"""Quickstart: your first K/V EBSP job, in three acts.

Act 1 runs word count through the MapReduce layer (no EBSP knowledge
needed).  Act 2 writes the same thing as a native two-step EBSP job.
Act 3 shows what MapReduce can't do: an iterated computation in ONE job
with selective enablement — only the components with work ever run.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import Job, Compute, LocalKVStore, TableSpec, run_job
from repro.ebsp import MessageListLoader, SumAggregator, TableScanLoader
from repro.mapreduce import Mapper, MapReduceSpec, Reducer, run_mapreduce

DOCS = {
    0: "the quick brown fox",
    1: "jumps over the lazy dog",
    2: "the dog barks",
}


# --------------------------------------------------------------------------
# Act 1 — word count via the MapReduce layer
# --------------------------------------------------------------------------
class WordCountMapper(Mapper):
    def map(self, key, value, emit):
        for word in value.split():
            emit(word, 1)


class SumReducer(Reducer):
    def reduce(self, key, values, emit):
        emit(key, sum(values))


def act_one(store: LocalKVStore) -> None:
    docs = store.create_table(TableSpec(name="docs"))
    docs.put_many(DOCS.items())
    run_mapreduce(
        store,
        MapReduceSpec(WordCountMapper(), SumReducer(), combiner=lambda a, b: a + b),
        "docs",
        "counts",
    )
    counts = dict(store.get_table("counts").items())
    print("[act 1] word counts via MapReduce:", dict(sorted(counts.items())))


# --------------------------------------------------------------------------
# Act 2 — the same thing as a native EBSP job
# --------------------------------------------------------------------------
class WordCountCompute(Compute):
    """Step 0 components are documents (they scatter words); step 1
    components are words (they fold their counts into state)."""

    def compute(self, ctx) -> bool:
        if ctx.step_num == 0:
            for word in ctx.read_state(0).split():
                ctx.output_message(word, 1)
        else:
            ctx.write_state(1, sum(ctx.input_messages()))
        return False

    def combine_messages(self, ctx, key, m1, m2):
        return m1 + m2  # counts are summable anywhere, anytime


class WordCountJob(Job):
    def __init__(self, store):
        self._store = store

    def state_table_names(self):
        return ["docs2", "counts2"]

    def get_compute(self):
        return WordCountCompute()

    def loaders(self):
        return [TableScanLoader(self._store.get_table("docs2"))]


def act_two(store: LocalKVStore) -> None:
    docs = store.create_table(TableSpec(name="docs2"))
    docs.put_many(DOCS.items())
    result = run_job(store, WordCountJob(store))
    counts = dict(store.get_table("counts2").items())
    print(
        f"[act 2] word counts via K/V EBSP ({result.steps} steps, "
        f"{result.compute_invocations} component invocations):",
        dict(sorted(counts.items())),
    )


# --------------------------------------------------------------------------
# Act 3 — iteration + selective enablement in a single job
# --------------------------------------------------------------------------
class CollatzCompute(Compute):
    """Each component computes the Collatz stopping time of its key.

    One component per starting number; a component messages itself
    until it reaches 1.  Finished components simply stop — nothing
    scans them again.  An aggregator reports how many are still alive
    each step (readable in the next step).
    """

    def compute(self, ctx) -> bool:
        for value, steps in ctx.input_messages():
            if value == 1:
                ctx.write_state(0, steps)
            else:
                successor = value // 2 if value % 2 == 0 else 3 * value + 1
                ctx.output_message(ctx.key, (successor, steps + 1))
                ctx.aggregate_value("alive", 1)
        return False


class CollatzJob(Job):
    def __init__(self, numbers):
        self._numbers = list(numbers)

    def state_table_names(self):
        return ["collatz"]

    def get_compute(self):
        return CollatzCompute()

    def aggregators(self):
        return {"alive": SumAggregator()}

    def loaders(self):
        return [MessageListLoader([(n, (n, 0)) for n in self._numbers])]


def act_three(store: LocalKVStore) -> None:
    result = run_job(store, CollatzJob(range(2, 30)))
    stopping = dict(store.get_table("collatz").items())
    longest = max(stopping, key=stopping.get)
    print(
        f"[act 3] Collatz stopping times for 2..29 in ONE iterated job: "
        f"{result.steps} steps, {result.compute_invocations} invocations "
        f"(a full-scan platform would have done {result.steps * 28}); "
        f"hardest start: {longest} with {stopping[longest]} steps"
    )


def main() -> None:
    store = LocalKVStore(default_n_parts=4)
    act_one(store)
    act_two(store)
    act_three(store)


if __name__ == "__main__":
    main()
