"""Maintain shortest-path distances on a changing graph (paper §V-C).

A road-network-ish scenario: a dispatch center (the source vertex)
needs every node annotated with its hop distance, while roads open and
close in small batches.  The selective-enablement variant re-touches
only the vertices whose annotation could actually change; the
MapReduce-style full-scan variant re-reads the whole graph per wave —
the paper measured 0.21 s vs 78 s for ten 1,000-change batches.

Run:  python examples/incremental_shortest_paths.py [n_vertices] [n_edges]
"""

from __future__ import annotations

import sys
import time

from repro import PartitionedKVStore
from repro.apps.sssp import (
    DynamicGraphWorkload,
    FullScanSSSP,
    INFINITY,
    SelectiveSSSP,
    reference_distances,
)
from repro.apps.sssp.common import apply_batch_to_adjacency


def main() -> None:
    n_vertices = int(sys.argv[1]) if len(sys.argv) > 1 else 1_000
    n_edges = int(sys.argv[2]) if len(sys.argv) > 2 else 18_000
    workload = DynamicGraphWorkload(
        n_vertices=n_vertices,
        n_edges=n_edges,
        batches=10,
        changes_per_batch=max(4, n_vertices // 100),
        seed=2013,
    )
    print(
        f"dynamic graph: {n_vertices} vertices, ~{n_edges} edges, "
        f"source = {workload.source}, 10 batches x "
        f"{workload.changes_per_batch} changes"
    )

    solvers = {}
    for name, cls in [("selective", SelectiveSSSP), ("full-scan", FullScanSSSP)]:
        store = PartitionedKVStore(n_partitions=6)
        solver = cls(store, workload.source)
        solver.load({v: set(ns) for v, ns in workload.initial_adjacency.items()})
        solver.initial_solve()
        solvers[name] = (store, solver)

    # ground truth, maintained alongside
    adjacency = {v: set(ns) for v, ns in workload.initial_adjacency.items()}

    totals = {name: 0.0 for name in solvers}
    for i, batch in enumerate(workload.change_batches):
        apply_batch_to_adjacency(adjacency, batch)
        reference = reference_distances(adjacency, workload.source)
        line = [f"batch {i}: +{len(batch.add_edges)}/-{len(batch.remove_edges)} edges"]
        for name, (_, solver) in solvers.items():
            start = time.monotonic()
            solver.update(batch)
            elapsed = time.monotonic() - start
            totals[name] += elapsed
            distances = solver.distances()
            wrong = sum(1 for v in reference if distances.get(v) != reference[v])
            line.append(f"{name} {elapsed * 1000:7.1f} ms ({'OK' if wrong == 0 else f'{wrong} WRONG'})")
        print(" | ".join(line))

    print(
        f"\ntotals: selective {totals['selective']:.2f}s vs full-scan "
        f"{totals['full-scan']:.2f}s -> {totals['full-scan'] / totals['selective']:.0f}x "
        "advantage (paper: ~370x at 100k vertices; the gap grows with size)"
    )
    reachable = sum(1 for d in solvers["selective"][1].distances().values() if d < INFINITY)
    print(f"{reachable}/{n_vertices} vertices currently reachable from the source")
    for store, _ in solvers.values():
        store.close()


if __name__ == "__main__":
    main()
