"""Cluster data with k-means running entirely inside one EBSP job.

The global model (the centroids) lives in individual aggregators:
every point contributes its vector to its cluster's aggregator during
step i and reads the refreshed centroids back in step i+1.  A
convergence aborter stops the job one step after no point changes
cluster.  Iterated MapReduce would pay two barriers plus a dataset
round-trip through the filesystem per Lloyd iteration for the same
arithmetic — here an iteration is one barrier and zero table I/O.

Run:  python examples/kmeans_clustering.py [n_points] [k]
"""

from __future__ import annotations

import sys
from collections import Counter

import numpy as np

from repro import PartitionedKVStore
from repro.apps.kmeans import gaussian_blobs, reference_kmeans, run_kmeans


def main() -> None:
    n_points = int(sys.argv[1]) if len(sys.argv) > 1 else 600
    k = int(sys.argv[2]) if len(sys.argv) > 2 else 4

    points = gaussian_blobs(n_points, k=k, dims=2, seed=17, separation=6.0)
    store = PartitionedKVStore(n_partitions=6)
    result = run_kmeans(store, points, k=k)

    sizes = Counter(result.assignments.values())
    print(
        f"clustered {n_points} points into {k} groups in "
        f"{result.iterations} Lloyd iterations "
        f"({result.job_result.barriers} barriers, "
        f"{result.job_result.compute_invocations} point invocations)"
    )
    for cluster in range(k):
        center = ", ".join(f"{c:+.2f}" for c in result.centroids[cluster])
        print(f"  cluster {cluster}: {sizes[cluster]:4d} points around ({center})")

    initial = np.vstack([points[key] for key in sorted(points)[:k]])
    ref_centroids, ref_assignments, ref_iterations = reference_kmeans(points, initial, 100)
    assert result.assignments == ref_assignments
    assert np.allclose(result.centroids, ref_centroids)
    assert result.iterations == ref_iterations
    print(f"identical to plain Lloyd's algorithm ({ref_iterations} iterations) ✓")
    store.close()


if __name__ == "__main__":
    main()
