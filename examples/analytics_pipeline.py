"""An end-to-end analytics pipeline across every layer of the stack.

A citation-network scenario glued together from the pieces this
library ships:

1. **ingest** — write a CSV of papers and a JSONL of citations, then
   load both into co-partitioned tables (`repro.mapreduce.formats`);
2. **reshape** — group citations into per-paper adjacency with the
   generic MapReduce layer;
3. **analyze** — PageRank over the citation graph with the Graph EBSP
   layer (`repro.graph.algorithms`);
4. **join & report** — join ranks back to paper metadata
   (`join_tables`), pick the top papers with the storage-layer
   `top_k`, and export the result as CSV.

Everything runs on one PersistentKVStore directory, so after the run
you can poke at it:  ``python -m repro.tools.inspect <dir>``

Run:  python examples/analytics_pipeline.py
"""

from __future__ import annotations

import os
import tempfile

import numpy as np

from repro import PersistentKVStore
from repro.graph import graph_pagerank, load_graph
from repro.graph.generators import power_law_directed_graph
from repro.mapreduce import dump_csv, join_tables, load_csv, load_jsonl, top_k


def write_input_files(directory: str, n_papers: int, n_citations: int):
    """Fabricate the raw files an ingest pipeline would receive."""
    papers_csv = os.path.join(directory, "papers.csv")
    with open(papers_csv, "w") as fh:
        fh.write("paper_id,title,year\n")
        for p in range(n_papers):
            fh.write(f"p{p},Paper {p} on Topic {p % 7},{1998 + p % 25}\n")

    adjacency = power_law_directed_graph(n_papers, n_citations, seed=99)
    citations_jsonl = os.path.join(directory, "citations.jsonl")
    count = 0
    with open(citations_jsonl, "w") as fh:
        for src, targets in adjacency.items():
            for dst in np.unique(targets).tolist():
                if dst != src:
                    fh.write(f'{{"id": {count}, "from": {src}, "to": {dst}}}\n')
                    count += 1
    return papers_csv, citations_jsonl, adjacency, count


def main() -> None:
    n_papers, n_citations = 400, 3000
    workdir = tempfile.mkdtemp(prefix="ripple-pipeline-")
    store_dir = os.path.join(workdir, "store")
    papers_csv, citations_jsonl, adjacency, n_links = write_input_files(
        workdir, n_papers, n_citations
    )
    store = PersistentKVStore(store_dir, default_n_parts=4)

    # 1. ingest
    loaded_papers = load_csv(store, papers_csv, "papers", key_column="paper_id")
    loaded_citations = load_jsonl(store, citations_jsonl, "citations", key_of=lambda r: r["id"])
    print(f"[ingest ] {loaded_papers} papers, {loaded_citations} citation records")

    # 2. reshape: citations -> adjacency, via the MapReduce layer
    from repro.mapreduce import CollectReducer, FnMapper, MapReduceSpec, run_mapreduce

    run_mapreduce(
        store,
        MapReduceSpec(FnMapper(lambda k, v: [(v["from"], v["to"])]), CollectReducer()),
        "citations",
        "adjacency",
    )
    print(f"[reshape] adjacency for {store.get_table('adjacency').size()} citing papers")

    # 3. analyze: PageRank on the Graph EBSP layer
    full = {p: [] for p in range(n_papers)}
    for paper, targets in store.get_table("adjacency").items():
        full[paper] = targets
    load_graph(store, "graph", full)
    ranks = graph_pagerank(store, "graph", n_papers, iterations=10)
    from repro.kvstore.api import TableSpec

    table = store.create_table(TableSpec(name="ranks", n_parts=4))
    table.put_many((f"p{p}", {"paper_id": f"p{p}", "rank": rank}) for p, rank in ranks.items())
    print(f"[analyze] ranked {len(ranks)} papers (sum={sum(ranks.values()):.4f})")

    # 4. join ranks to metadata, report the top papers
    join_tables(
        store,
        "papers",
        "ranks",
        "report",
        left_key=lambda k, v: v["paper_id"],
        right_key=lambda k, v: v["paper_id"],
        join=lambda key, paper, rank_row: {
            "paper_id": key,
            "title": paper["title"],
            "year": paper["year"],
            "rank": rank_row["rank"],
        },
    )
    best = top_k(store, "report", 5, score_of=lambda k, v: v["rank"])
    print("[report ] most influential papers:")
    for key, row in best:
        print(f"           {row['rank']:.5f}  {row['title']} ({row['year']})")

    out_csv = os.path.join(workdir, "report.csv")
    written = dump_csv(store, "report", out_csv, columns=["paper_id", "title", "year", "rank"])
    store.close()
    print(f"[export ] {written} rows -> {out_csv}")
    print(f"store persisted at {store_dir}; inspect it with:")
    print(f"  python -m repro.tools.inspect {store_dir}")


if __name__ == "__main__":
    main()
