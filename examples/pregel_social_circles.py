"""Graph EBSP (the Pregel-style layer) on a social-network scenario.

Figure 2 of the paper stacks Graph EBSP above K/V EBSP; this example
uses that layer directly: find the friendship circles (connected
components) of a social graph, then measure each circle's size with an
aggregator — all vertex-program code, no raw EBSP plumbing.

Run:  python examples/pregel_social_circles.py
"""

from __future__ import annotations

from collections import Counter

import numpy as np

from repro import LocalKVStore
from repro.ebsp.aggregators import CountAggregator, SumAggregator
from repro.graph import VertexProgram, load_graph, run_vertex_program
from repro.graph.generators import power_law_undirected_edges


class CirclesProgram(VertexProgram):
    """Min-label propagation: every member learns the smallest member
    id of its circle.  Classic Pregel; halted vertices wake only when a
    smaller label arrives."""

    def compute(self, v):
        if v.superstep == 0:
            v.value = v.vertex_id
            v.send_to_neighbors(v.value)
            v.aggregate("active", 1)
            return
        best = min(v.messages(), default=v.value)
        if best < v.value:
            v.value = best
            v.send_to_neighbors(best)
            v.aggregate("active", 1)
        v.vote_to_halt()

    def combine(self, m1, m2):
        return min(m1, m2)  # only the smallest label matters


def main() -> None:
    n_people = 500
    edges = power_law_undirected_edges(n_people, 900, seed=7)
    adjacency = {p: set() for p in range(n_people)}
    for a, b in edges:
        adjacency[a].add(b)
        adjacency[b].add(a)

    store = LocalKVStore(default_n_parts=4)
    load_graph(store, "social", {p: sorted(ns) for p, ns in adjacency.items()})
    result = run_vertex_program(
        store,
        CirclesProgram(),
        "social",
        aggregators={"active": SumAggregator()},
    )

    labels = {p: s.value for p, s in store.get_table("social").items()}
    circles = Counter(labels.values())
    sizes = sorted(circles.values(), reverse=True)
    print(
        f"{n_people} people, {len(edges)} friendships -> "
        f"{len(circles)} circles in {result.steps} supersteps"
    )
    print(f"largest circles: {sizes[:5]}; singletons: {sum(1 for s in sizes if s == 1)}")
    # sanity: a label is always the smallest id in its circle
    for person, label in labels.items():
        assert label <= person
    print("every member knows its circle's smallest id ✓")


if __name__ == "__main__":
    main()
