"""Rank a synthetic web graph with both PageRank variants (paper §V-A).

Generates a power-law web graph, ranks it with the direct (one step
per iteration) and MapReduce-emulating (two steps per iteration)
variants, verifies they agree with the dense-algebra reference, and
prints the structural cost difference Table I's timing gap is made of.

Run:  python examples/pagerank_web_ranking.py [n_vertices] [n_edges]
"""

from __future__ import annotations

import sys
import time

from repro import PartitionedKVStore
from repro.apps.pagerank import (
    PageRankConfig,
    build_pagerank_table,
    pagerank_direct,
    pagerank_mapreduce,
    read_ranks,
    reference_pagerank,
)
from repro.graph.generators import power_law_directed_graph


def main() -> None:
    n_vertices = int(sys.argv[1]) if len(sys.argv) > 1 else 2_000
    n_edges = int(sys.argv[2]) if len(sys.argv) > 2 else 40_000
    config = PageRankConfig(iterations=8, damping=0.85)

    print(f"generating a {n_vertices}-page / {n_edges}-link web graph ...")
    adjacency = power_law_directed_graph(n_vertices, n_edges, seed=2013)

    results = {}
    for name, variant in [("direct", pagerank_direct), ("mapreduce", pagerank_mapreduce)]:
        store = PartitionedKVStore(n_partitions=6)  # the paper's Table I setup
        n = build_pagerank_table(store, "web", adjacency)
        start = time.monotonic()
        job_result = variant(store, "web", n, config)
        elapsed = time.monotonic() - start
        ranks = read_ranks(store, "web")
        results[name] = (job_result, elapsed, ranks)
        store.close()
        print(
            f"{name:>9}: {elapsed:6.2f}s | {job_result.steps:3d} steps | "
            f"{job_result.barriers:3d} barriers | "
            f"{job_result.counters['messages_sent']:,} messages"
        )

    direct_job, direct_time, direct_ranks = results["direct"]
    mr_job, mr_time, mr_ranks = results["mapreduce"]
    print(
        f"\nthe MapReduce variant paid {mr_job.barriers - direct_job.barriers} extra "
        f"synchronizations and {config.iterations * n_vertices:,} extra table "
        f"reads+writes for identical ranks "
        f"(direct was {(mr_time / direct_time - 1) * 100:+.1f}% faster here; "
        "paper: 15-19% on a 16-hyperthread JVM testbed)"
    )

    reference = reference_pagerank(adjacency, config)
    worst = max(abs(direct_ranks[v] - reference[v]) for v in reference)
    agree = max(abs(direct_ranks[v] - mr_ranks[v]) for v in reference)
    print(f"max |rank - reference| = {worst:.2e}; max |direct - mapreduce| = {agree:.2e}")

    top = sorted(direct_ranks.items(), key=lambda kv: -kv[1])[:5]
    print("top pages:", ", ".join(f"{v} ({rank:.5f})" for v, rank in top))


if __name__ == "__main__":
    main()
