"""Dense matrix multiply by the SUMMA pattern — with the barriers
switched on and off (paper §V-B).

The job pipelines block multicasts along grid rows and columns.  Under
BSP synchronization, the 3×3 example needs 7 steps even though each
component multiplies only 3 blocks (Table II: 1,3,6,3,6,3,5).  Because
the computation only needs per-channel FIFO (the `incremental`
property), Ripple can simply switch the barriers off — "the computation
can finish much sooner".

Run:  python examples/summa_matrix_multiply.py [matrix_size]
"""

from __future__ import annotations

import sys
import time

import numpy as np

from repro.apps.summa import BlockGrid, multiplications_per_step, summa_multiply
from repro.ebsp.results import Counters
from repro.kvstore.replicated import ReplicatedKVStore


def main() -> None:
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 240
    grid = BlockGrid(3, 3, 3)
    simulated_t = 0.04  # each component is "a machine" whose multiply takes 40 ms

    print("analytic schedule (Table II):", multiplications_per_step(3, 3, 3))

    rng = np.random.default_rng(42)
    a = rng.standard_normal((size, size))
    b = rng.standard_normal((size, size))
    expected = a @ b

    for label, synchronize in [("synchronized", True), ("no-sync", False)]:
        store = ReplicatedKVStore(n_shards=9, replication=0)  # the paper used 10 WXS containers
        counters = Counters()
        start = time.monotonic()
        c, result = summa_multiply(
            store,
            a,
            b,
            grid,
            synchronize=synchronize,
            counters=counters,
            simulated_multiply_seconds=simulated_t,
        )
        elapsed = time.monotonic() - start
        store.close()
        assert np.allclose(c, expected), "wrong product!"
        steps = f"{result.steps} steps" if synchronize else "no steps (event-driven)"
        print(
            f"{label:>12}: {elapsed:5.2f}s | {steps} | "
            f"{counters.get('muls_total')} block multiplies | correct ✓"
        )
        if synchronize:
            per_step = [counters.get(f"muls_step_{s}") for s in range(result.steps)]
            print(f"{'':>12}  multiplies per step: {per_step}  <- live Table II")
            sync_time = elapsed
        else:
            print(
                f"{'':>12}  speedup from removing barriers: "
                f"{sync_time / elapsed:.2f}x (paper: 1.76x, schedule bound 7/3 ≈ 2.33x)"
            )


if __name__ == "__main__":
    main()
