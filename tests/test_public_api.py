"""The public API surface: imports, exports, and the README example."""

from __future__ import annotations

import importlib

import pytest


PUBLIC_MODULES = [
    "repro",
    "repro.errors",
    "repro.serde",
    "repro.util",
    "repro.kvstore",
    "repro.kvstore.api",
    "repro.messaging",
    "repro.runtime",
    "repro.ebsp",
    "repro.ebsp.convergence",
    "repro.ebsp.scheduler",
    "repro.obs",
    "repro.mapreduce",
    "repro.graph",
    "repro.apps.pagerank",
    "repro.apps.summa",
    "repro.apps.sssp",
    "repro.apps.kmeans",
    "repro.bench",
    "repro.bench.experiments",
    "repro.tools.inspect",
]


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_module_imports(module_name):
    importlib.import_module(module_name)


def test_all_exports_resolve():
    for module_name in ["repro", "repro.ebsp", "repro.kvstore", "repro.mapreduce", "repro.graph"]:
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{module_name}.__all__ lists missing {name}"


def test_version():
    import repro

    assert repro.__version__


def test_readme_chain_example():
    """The exact snippet from README.md must work."""
    from repro import Compute, Job, LocalKVStore, run_job
    from repro.ebsp import MessageListLoader

    class Chain(Compute):
        def compute(self, ctx):
            for value in ctx.input_messages():
                ctx.write_state(0, value)
                if value < 10:
                    ctx.output_message(ctx.key + 1, value + 1)
            return False

    class ChainJob(Job):
        def state_table_names(self):
            return ["chain"]

        def get_compute(self):
            return Chain()

        def loaders(self):
            return [MessageListLoader([(0, 1)])]

    store = LocalKVStore(default_n_parts=4)
    result = run_job(store, ChainJob())
    assert result.steps == 10
    assert dict(store.get_table("chain").items()) == {i: i + 1 for i in range(10)}


def test_every_public_callable_has_a_docstring():
    """Documentation contract: public API items carry doc comments."""
    import inspect

    for module_name in ["repro.ebsp", "repro.kvstore", "repro.mapreduce", "repro.graph"]:
        module = importlib.import_module(module_name)
        for name in getattr(module, "__all__", []):
            obj = getattr(module, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                assert obj.__doc__, f"{module_name}.{name} lacks a docstring"
