"""Active-part scheduling and write-back state commits.

A superstep's cost should scale with the *active frontier* (§II-A
selective enablement), not with ``n_parts``: parts with no pending
records are skipped entirely, contributing only identity aggregator
partials and a trivial progress-table entry.  State writes buffer in a
per-part-step write-back cache and commit as one batch per table.
"""

from __future__ import annotations

import pytest

from repro.ebsp.aggregators import MaxAggregator, MinAggregator, SumAggregator
from repro.ebsp.engine import SyncEngine
from repro.ebsp.loaders import EnableKeysLoader, MessageListLoader
from repro.ebsp.recovery import FailureInjector
from repro.ebsp.runner import run_job
from repro.kvstore.local import LocalKVStore
from repro.util.hashing import part_for_key

from tests.ebsp.jobs import TestJob


@pytest.fixture
def store():
    instance = LocalKVStore(default_n_parts=8)
    yield instance
    instance.close()


def ping_job(length: int, aggregators=None):
    """Key 0 forwards a counter to itself — exactly one part is ever
    active, so every other part-step is skippable."""

    def fn(ctx):
        for value in ctx.input_messages():
            ctx.write_state(0, value)
            if aggregators:
                ctx.aggregate_value("sum", value)
                ctx.aggregate_value("min", value)
                ctx.aggregate_value("max", value)
            if value < length:
                ctx.output_message(ctx.key, value + 1)
        return False

    return TestJob(
        fn, loaders=[MessageListLoader([(0, 1)])], aggregators=aggregators or {}
    )


class TestActiveScheduling:
    def test_sparse_job_skips_idle_parts(self, store):
        result = run_job(store, ping_job(5), synchronize=True)
        assert result.steps == 5
        # one active part per step, the other seven skipped
        assert result.part_steps_run == result.steps
        assert result.parts_skipped == result.steps * 7
        for metrics in result.timeline:
            assert metrics.parts_run == 1
            assert metrics.parts_skipped == 7
        assert store.get_table("state").get(0) == 5

    def test_disabled_scheduling_enumerates_everything(self, store):
        result = run_job(store, ping_job(5), synchronize=True, active_scheduling=False)
        assert result.steps == 5
        assert result.part_steps_run == result.steps * 8
        assert result.parts_skipped == 0
        assert store.get_table("state").get(0) == 5

    def test_outputs_identical_with_and_without_scheduling(self):
        results = {}
        states = {}
        for mode in (True, False):
            with LocalKVStore(default_n_parts=8) as store:
                results[mode] = run_job(
                    store,
                    ping_job(
                        6,
                        aggregators={
                            "sum": SumAggregator(),
                            "min": MinAggregator(),
                            "max": MaxAggregator(),
                        },
                    ),
                    synchronize=True,
                    active_scheduling=mode,
                )
                states[mode] = sorted(store.get_table("state").items())
        assert results[True].steps == results[False].steps
        # identity partials synthesized for skipped parts must merge to
        # exactly what the always-enumerate baseline produces
        assert results[True].aggregates == results[False].aggregates
        assert states[True] == states[False]
        assert results[True].parts_skipped > 0
        assert results[False].parts_skipped == 0

    def test_idle_parts_contribute_identity_partials(self, store):
        """Min/Max use a None identity: merging the synthesized partials
        of seven idle parts must not disturb the real extremes."""
        result = run_job(
            store,
            ping_job(
                3,
                aggregators={
                    "sum": SumAggregator(),
                    "min": MinAggregator(),
                    "max": MaxAggregator(),
                },
            ),
            synchronize=True,
        )
        # the final step aggregates only its own delivered value (3)
        assert result.aggregates == {"sum": 3, "min": 3, "max": 3}

    def test_recovery_marks_skipped_parts_complete(self, store):
        """A failure in a step where most parts were skipped: the skipped
        parts are trivially complete in the progress table, the failed
        part retries, and the job result is unharmed."""
        injector = FailureInjector()
        active_part = part_for_key(0, 8)
        injector.schedule(part=active_part, step=2, times=2)
        engine = SyncEngine(
            store,
            ping_job(6),
            fault_tolerance=True,
            failure_injector=injector,
        )
        marked = []
        progress = engine._progress
        orig_one = progress.mark_completed
        orig_many = progress.mark_completed_many

        def record_one(part, step):
            marked.append((part, step))
            orig_one(part, step)

        def record_many(parts, step):
            marked.extend((part, step) for part in parts)
            orig_many(parts, step)

        progress.mark_completed = record_one
        progress.mark_completed_many = record_many
        result = engine.run()
        assert injector.failures_injected == 2
        assert result.counters["part_step_retries"] == 2
        assert result.parts_skipped == result.steps * 7
        # every (part, step) is recorded complete exactly once — the
        # skipped ones in bulk, the active one at its commit point
        expected = {(p, s) for p in range(8) for s in range(result.steps)}
        assert set(marked) == expected
        assert len(marked) == len(expected)
        assert store.get_table("state").get(0) == 6


class TestWriteBack:
    def test_read_after_write_within_invocation(self, store):
        observed = []

        def fn(ctx):
            ctx.write_state(0, "written")
            observed.append(ctx.read_state(0))
            ctx.delete_state(0)
            observed.append(ctx.read_state(0))
            ctx.write_state(0, "final")
            return False

        run_job(store, TestJob(fn, loaders=[EnableKeysLoader([0])]), synchronize=True)
        assert observed == ["written", None]
        assert store.get_table("state").get(0) == "final"

    def test_created_state_visible_in_same_part_step(self, store):
        """A creation staged at the start of a part-step is readable by
        the created component's own invocation in that part-step —
        before anything has been committed to the state table."""
        observed = {}

        def fn(ctx):
            if ctx.step_num == 0:
                ctx.create_state(0, 100, "seeded")
                ctx.output_message(100, "wake")
            else:
                observed[ctx.key] = ctx.read_state(0)
            return False

        run_job(store, TestJob(fn, loaders=[EnableKeysLoader([0])]), synchronize=True)
        assert observed == {100: "seeded"}
        assert store.get_table("state").get(100) == "seeded"

    def test_deletes_commit_in_batch(self, store):
        def fn(ctx):
            if ctx.step_num == 0:
                ctx.write_state(0, "transient")
                ctx.output_message(ctx.key, "again")
            else:
                ctx.delete_state(0)
            return False

        result = run_job(
            store, TestJob(fn, loaders=[EnableKeysLoader([0])]), synchronize=True
        )
        assert store.get_table("state").get(0) is None
        assert result.state_writeback_batches >= 2  # a put batch + a delete batch
        assert result.counters["state_writeback_records"] >= 2

    def test_writeback_batches_counted_once_per_table(self, store):
        """Many dirty components in one part-step commit as one batch."""
        keys = [k for k in range(200) if part_for_key(k, 8) == 0][:10]

        def fn(ctx):
            ctx.write_state(0, ctx.key)
            return False

        result = run_job(
            store, TestJob(fn, loaders=[EnableKeysLoader(keys)]), synchronize=True
        )
        assert result.counters["state_writeback_records"] == len(keys)
        # all ten writes landed in part 0's single part-step commit
        assert result.state_writeback_batches == 1
        assert sorted(store.get_table("state").items()) == sorted(
            (k, k) for k in keys
        )

    def test_repeated_reads_hit_cache(self, store):
        """After the first touch, reads of a missing key stay local to
        the part-step (negative caching)."""
        from repro.kvstore.api import TableSpec

        table = store.create_table(TableSpec(name="state"))
        gets = []
        orig_get = table.get

        def counting_get(key):
            gets.append(key)
            return orig_get(key)

        table.get = counting_get
        reads = []

        def fn(ctx):
            reads.append(ctx.read_state(0))
            reads.append(ctx.read_state(0))
            return False

        run_job(store, TestJob(fn, loaders=[EnableKeysLoader([0])]), synchronize=True)
        assert reads == [None, None]
        assert gets.count(0) == 1
