"""Engine error paths and less-traveled corners."""

from __future__ import annotations

import pytest

from repro.errors import AggregatorError, ComputeError, JobSpecError
from repro.ebsp.aggregators import SumAggregator
from repro.ebsp.engine import SyncEngine
from repro.ebsp.exporters import CollectingExporter
from repro.ebsp.loaders import EnableKeysLoader, FunctionLoader, MessageListLoader
from repro.ebsp.runner import run_job
from repro.kvstore.api import TableSpec
from repro.kvstore.local import LocalKVStore

from tests.ebsp.jobs import TestJob


@pytest.fixture
def store():
    instance = LocalKVStore(default_n_parts=4)
    yield instance
    instance.close()


class TestLoaderErrors:
    def test_loader_exception_propagates_and_cleans_up(self, store):
        def bad_loader(ctx):
            raise RuntimeError("loader boom")

        job = TestJob(lambda ctx: False, loaders=[FunctionLoader(bad_loader)])
        before = set(store.list_tables())
        with pytest.raises(RuntimeError):
            run_job(store, job)
        # the private transport table must not leak
        leaked = {t for t in set(store.list_tables()) - before if t.startswith("__ebsp")}
        assert leaked == set()

    def test_loader_bad_aggregator_name(self, store):
        job = TestJob(
            lambda ctx: False,
            loaders=[FunctionLoader(lambda ctx: ctx.aggregate_value("ghost", 1))],
        )
        with pytest.raises(AggregatorError):
            run_job(store, job)


class TestMessageValidation:
    def test_none_message_rejected(self, store):
        def fn(ctx):
            ctx.output_message(1, None)
            return False

        job = TestJob(fn, loaders=[EnableKeysLoader([0])])
        with pytest.raises(ComputeError):
            run_job(store, job)

    def test_none_state_rejected(self, store):
        def fn(ctx):
            ctx.write_state(0, None)
            return False

        job = TestJob(fn, loaders=[EnableKeysLoader([0])])
        with pytest.raises(ComputeError):
            run_job(store, job)

    def test_none_created_state_rejected(self, store):
        def fn(ctx):
            ctx.create_state(0, 9, None)
            return False

        job = TestJob(fn, loaders=[EnableKeysLoader([0])])
        with pytest.raises(ComputeError):
            run_job(store, job)


class TestStatelessJobs:
    def test_job_with_no_state_tables(self, store):
        """All state in messages — legal per Section II."""
        outputs = CollectingExporter()

        def fn(ctx):
            for value in ctx.input_messages():
                if value < 3:
                    ctx.output_message(ctx.key + 1, value + 1)
                else:
                    ctx.direct_job_output("final", value)
            return False

        job = TestJob(
            fn,
            state_tables=[],
            loaders=[MessageListLoader([(0, 0)])],
            direct_exporter=outputs,
        )
        result = run_job(store, job)
        assert outputs.pairs == {"final": 3}
        assert result.steps == 4


class TestCombinerContract:
    def test_combiner_exception_surfaces(self, store):
        def fn(ctx):
            if ctx.step_num == 0:
                ctx.output_message(100, ctx.key)
            return False

        def bad_combiner(a, b):
            raise ValueError("combiner boom")

        job = TestJob(
            fn, loaders=[EnableKeysLoader([0, 1])], combiner=bad_combiner
        )
        with pytest.raises(ValueError):
            run_job(store, job)

    def test_default_state_merge_raises_on_conflict(self, store):
        def fn(ctx):
            ctx.create_state(0, 99, {"from": ctx.key})
            return False

        job = TestJob(fn, loaders=[EnableKeysLoader([0, 1])])
        # two creations for key 99, no combine_states override
        with pytest.raises(ValueError):
            run_job(store, job)


class TestEngineConfiguration:
    def test_zero_max_steps(self, store):
        job = TestJob(lambda ctx: False, loaders=[EnableKeysLoader([0])])
        result = run_job(store, job, max_steps=0)
        assert result.steps == 0
        assert result.compute_invocations == 0

    def test_tiny_spill_batch(self, store):
        received = []

        def fn(ctx):
            if ctx.step_num == 0:
                for target in range(20):
                    ctx.output_message(100 + target, target)
            else:
                received.extend(ctx.input_messages())
            return False

        job = TestJob(fn, loaders=[EnableKeysLoader([0])])
        run_job(store, job, spill_batch=1)
        assert sorted(received) == list(range(20))

    def test_counters_present(self, store):
        def fn(ctx):
            if ctx.step_num == 0:
                ctx.output_message(ctx.key + 1, "m")
            return False

        job = TestJob(fn, loaders=[EnableKeysLoader([0])])
        result = run_job(store, job)
        counters = result.counters
        assert counters["compute_invocations"] == 2
        assert counters["messages_sent"] == 1
        assert counters["barriers"] == 2
        assert counters["records_spilled"] >= 2  # enable + message

    def test_combined_counter(self, store):
        def fn(ctx):
            if ctx.step_num == 0:
                ctx.output_message(100, 1)
                ctx.output_message(100, 2)
            return False

        job = TestJob(
            fn, loaders=[EnableKeysLoader([0])], combiner=lambda a, b: a + b
        )
        result = run_job(store, job)
        assert result.counters.get("messages_combined", 0) == 1

    def test_engine_reuse_rejected_implicitly_by_fresh_tables(self, store):
        """Two sequential engines on one store work; private tables are
        uniquely named per job."""
        job1 = TestJob(lambda ctx: False, loaders=[EnableKeysLoader([0])])
        job2 = TestJob(lambda ctx: False, loaders=[EnableKeysLoader([0])])
        run_job(store, job1)
        run_job(store, job2)  # no TableExistsError
