"""Aborter helper combinators, standalone and inside a job."""

from __future__ import annotations

import pytest

from repro.ebsp.aggregators import SumAggregator
from repro.ebsp.convergence import (
    after_steps,
    any_of,
    when_aggregate_below,
    when_aggregate_stable,
    when_aggregate_zero,
)
from repro.ebsp.loaders import EnableKeysLoader
from repro.ebsp.runner import run_job

from tests.ebsp.jobs import TestJob


class TestCombinators:
    def test_zero_waits_for_warmup(self):
        aborter = when_aggregate_zero("changed", warmup_steps=2)
        assert not aborter(0, {"changed": 0})
        assert not aborter(1, {"changed": 0})
        assert aborter(2, {"changed": 0})
        assert not aborter(2, {"changed": 5})

    def test_zero_treats_missing_as_zero(self):
        aborter = when_aggregate_zero("changed")
        assert aborter(1, {})

    def test_below(self):
        aborter = when_aggregate_below("residual", 1e-3)
        assert not aborter(1, {"residual": 0.5})
        assert aborter(1, {"residual": 1e-4})

    def test_below_rejects_bad_tolerance(self):
        with pytest.raises(ValueError):
            when_aggregate_below("r", 0)

    def test_stable_needs_consecutive_repeats(self):
        aborter = when_aggregate_stable("value", patience=2)
        assert not aborter(0, {"value": 1.0})   # no history yet
        assert not aborter(1, {"value": 1.0})   # streak 1
        assert aborter(2, {"value": 1.0})       # streak 2
        aborter2 = when_aggregate_stable("value", patience=2)
        aborter2(0, {"value": 1.0})
        aborter2(1, {"value": 2.0})             # moved: streak resets
        assert not aborter2(2, {"value": 2.0})

    def test_after_steps(self):
        aborter = after_steps(3)
        assert not aborter(1, {})
        assert aborter(2, {})

    def test_any_of(self):
        aborter = any_of(after_steps(10), when_aggregate_zero("done"))
        assert aborter(1, {"done": 0})
        assert not aborter(1, {"done": 3})

    def test_any_of_empty(self):
        with pytest.raises(ValueError):
            any_of()


class TestInsideJob:
    def test_converging_job_stops_itself(self, local_store):
        """A job that 'changes' fewer components each step stops when
        the changed-counter hits zero."""

        def fn(ctx):
            remaining = sum(ctx.input_messages())
            if remaining > 0:
                ctx.aggregate_value("changed", 1)
                ctx.output_message(ctx.key, remaining - 1)
            else:
                ctx.output_message(ctx.key, 0)  # keeps running; aborter must stop it
            return False

        stopper = when_aggregate_zero("changed", warmup_steps=1)
        from repro.ebsp.loaders import MessageListLoader

        job = TestJob(
            fn,
            loaders=[MessageListLoader([(0, 3)])],
            aggregators={"changed": SumAggregator()},
            aborter=stopper,
        )
        result = run_job(local_store, job, max_steps=50)
        assert result.aborted
        assert result.steps < 10
