"""The no-collect execution special case (§II-A)."""

from __future__ import annotations

import threading

import pytest

from repro.errors import PropertyViolationError
from repro.ebsp.engine import SyncEngine
from repro.ebsp.loaders import EnableKeysLoader, MessageListLoader
from repro.ebsp.properties import JobProperties
from repro.ebsp.runner import plan_for, run_job

from tests.ebsp.jobs import TestJob

NO_COLLECT = JobProperties(one_msg=True, no_continue=True)


class TestNoCollectPath:
    def test_plan_selects_no_collect(self):
        job = TestJob(lambda ctx: False, properties=NO_COLLECT)
        assert plan_for(job).no_collect

    def test_chain_job_correct(self, fast_store):
        """A forwarding chain runs correctly through the fused path."""
        def fn(ctx):
            for value in ctx.input_messages():
                ctx.write_state(0, value)
                if value < 10:
                    ctx.output_message(value + 1, value + 1)
            return False

        job = TestJob(
            fn, properties=NO_COLLECT, loaders=[MessageListLoader([(0, 0)])]
        )
        result = run_job(fast_store, job, synchronize=True)
        assert result.steps == 11
        assert fast_store.get_table("state").get(10) == 10

    def test_loader_enable_works(self, fast_store):
        invoked = []
        lock = threading.Lock()

        def fn(ctx):
            with lock:
                invoked.append((ctx.key, list(ctx.input_messages())))
            return False

        job = TestJob(fn, properties=NO_COLLECT, loaders=[EnableKeysLoader([4])])
        run_job(fast_store, job, synchronize=True)
        assert invoked == [(4, [])]

    def test_enable_plus_message_single_invocation(self, fast_store):
        invocations = []
        lock = threading.Lock()

        def fn(ctx):
            with lock:
                invocations.append(list(ctx.input_messages()))
            return False

        job = TestJob(
            fn,
            properties=NO_COLLECT,
            loaders=[EnableKeysLoader([0]), MessageListLoader([(0, "m")])],
        )
        run_job(fast_store, job, synchronize=True)
        assert invocations == [["m"]]

    def test_one_msg_violation_detected(self, fast_store):
        def fn(ctx):
            if ctx.step_num == 0:
                ctx.output_message(50, "a")
                ctx.output_message(50, "b")
            return False

        job = TestJob(fn, properties=NO_COLLECT, loaders=[EnableKeysLoader([0])])
        with pytest.raises(PropertyViolationError):
            run_job(fast_store, job, synchronize=True)

    def test_continue_violation_detected(self, fast_store):
        job = TestJob(
            lambda ctx: True,
            properties=NO_COLLECT,
            loaders=[EnableKeysLoader([0])],
        )
        with pytest.raises(PropertyViolationError):
            run_job(fast_store, job, synchronize=True)

    def test_create_state_through_no_collect(self, fast_store):
        def fn(ctx):
            if ctx.step_num == 0:
                ctx.create_state(0, 77, "born")
            return False

        job = TestJob(fn, properties=NO_COLLECT, loaders=[EnableKeysLoader([0])])
        run_job(fast_store, job, synchronize=True)
        assert fast_store.get_table("state").get(77) == "born"

    def test_sorted_when_needs_order(self, local_store):
        order = []

        def fn(ctx):
            order.append(ctx.key)
            return False

        job = TestJob(
            fn,
            properties=JobProperties(one_msg=True, no_continue=True, needs_order=True),
            loaders=[EnableKeysLoader([9, 1, 5, 13])],
        )
        run_job(local_store, job, synchronize=True)
        table = local_store.get_table("state")
        per_part = {}
        for key in order:
            per_part.setdefault(table.part_of(key), []).append(key)
        for keys in per_part.values():
            assert keys == sorted(keys)

    def test_fault_tolerance_composes(self, fast_store):
        from repro.ebsp.recovery import FailureInjector

        injector = FailureInjector()
        injector.schedule(part=0, step=1, times=1)

        def fn(ctx):
            for value in ctx.input_messages():
                ctx.write_state(0, value)
                if value < 4:
                    ctx.output_message(0, value + 1)  # key 0 → part 0
            return False

        job = TestJob(fn, properties=NO_COLLECT, loaders=[MessageListLoader([(0, 1)])])
        run_job(
            fast_store,
            job,
            synchronize=True,
            fault_tolerance=True,
            failure_injector=injector,
        )
        assert injector.failures_injected == 1
        assert fast_store.get_table("state").get(0) == 4
