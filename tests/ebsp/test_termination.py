"""Huang's weight-throwing termination detection."""

from __future__ import annotations

from fractions import Fraction

import pytest
from hypothesis import given, strategies as st

from repro.errors import TerminationError
from repro.ebsp.termination import ONE, WeightController, WeightPurse


class TestController:
    def test_starts_done(self):
        # weight 1 with nothing granted: trivially terminated
        controller = WeightController()
        assert controller.held == ONE
        assert not controller.is_done()  # done is only *signalled* by a return

    def test_grant_then_return_signals_done(self):
        controller = WeightController()
        weight = controller.grant_for_message()
        assert controller.held == Fraction(1, 2)
        controller.return_weight(weight)
        assert controller.is_done()
        assert controller.held == ONE

    def test_partial_return_not_done(self):
        controller = WeightController()
        w1 = controller.grant_for_message()
        w2 = controller.grant_for_message()
        controller.return_weight(w1)
        assert not controller.is_done()
        controller.return_weight(w2)
        assert controller.is_done()

    def test_over_return_rejected(self):
        controller = WeightController()
        controller.grant_for_message()
        with pytest.raises(TerminationError):
            controller.return_weight(ONE)

    def test_non_positive_return_rejected(self):
        controller = WeightController()
        with pytest.raises(TerminationError):
            controller.return_weight(Fraction(0))

    def test_wait_with_timeout(self):
        controller = WeightController()
        weight = controller.grant_for_message()
        assert controller.wait(timeout=0.01) is False
        controller.return_weight(weight)
        assert controller.wait(timeout=1) is True


class TestPurse:
    def test_receive_and_split(self):
        purse = WeightPurse()
        purse.receive(Fraction(1, 2))
        grant = purse.take_for_message()
        assert grant == Fraction(1, 4)
        assert purse.weight == Fraction(1, 4)

    def test_cannot_send_with_empty_purse(self):
        purse = WeightPurse()
        with pytest.raises(TerminationError):
            purse.take_for_message()

    def test_drain(self):
        purse = WeightPurse()
        purse.receive(Fraction(1, 8))
        assert purse.drain() == Fraction(1, 8)
        assert purse.empty

    def test_non_positive_receive_rejected(self):
        purse = WeightPurse()
        with pytest.raises(TerminationError):
            purse.receive(Fraction(0))


@given(st.lists(st.integers(min_value=0, max_value=4), min_size=1, max_size=40))
def test_weight_conservation_invariant(script):
    """Simulate an arbitrary forwarding pattern; total weight is always 1
    and done fires exactly when all of it is back at the controller."""
    controller = WeightController()
    in_flight = []
    purse = WeightPurse()
    for action in script:
        if action == 0:
            in_flight.append(controller.grant_for_message())
        elif action == 1 and in_flight:
            purse.receive(in_flight.pop())
        elif action == 2 and not purse.empty:
            in_flight.append(purse.take_for_message())
        elif action == 3 and not purse.empty:
            controller.return_weight(purse.drain())
        total = controller.held + purse.weight + sum(in_flight, Fraction(0))
        assert total == ONE
        assert controller.is_done() == (controller.held == ONE and controller.returns_received > 0) or not controller.is_done()
    # drain everything home
    while in_flight:
        purse.receive(in_flight.pop())
    if not purse.empty:
        controller.return_weight(purse.drain())
    if controller.returns_received:
        assert controller.is_done()
    assert controller.held == ONE
