"""The no-sync engine: eligibility, semantics, ordering, stealing."""

from __future__ import annotations

import threading

import pytest

from repro.errors import ComputeError, JobSpecError
from repro.ebsp.aggregators import SumAggregator
from repro.ebsp.async_engine import AsyncEngine
from repro.ebsp.exporters import CollectingExporter
from repro.ebsp.loaders import DictStateLoader, EnableKeysLoader, MessageListLoader
from repro.ebsp.properties import JobProperties
from repro.ebsp.runner import run_job
from repro.kvstore.local import LocalKVStore

from tests.ebsp.jobs import TestJob

INCREMENTAL = JobProperties(incremental=True, no_continue=True)


@pytest.fixture
def store():
    instance = LocalKVStore(default_n_parts=4)
    yield instance
    instance.close()


class TestEligibility:
    def test_ineligible_job_rejected(self, store):
        job = TestJob(lambda ctx: False)  # no properties declared
        with pytest.raises(JobSpecError):
            AsyncEngine(store, job)

    def test_aggregators_make_ineligible(self, store):
        job = TestJob(
            lambda ctx: False,
            properties=INCREMENTAL,
            aggregators={"x": SumAggregator()},
        )
        with pytest.raises(JobSpecError):
            AsyncEngine(store, job)

    def test_aborter_makes_ineligible(self, store):
        job = TestJob(
            lambda ctx: False,
            properties=INCREMENTAL,
            aborter=lambda step, aggs: False,
        )
        with pytest.raises(JobSpecError):
            AsyncEngine(store, job)

    def test_run_job_auto_selects_async(self, store):
        def fn(ctx):
            return False

        job = TestJob(fn, properties=INCREMENTAL, loaders=[MessageListLoader([(0, "x")])])
        result = run_job(store, job)
        assert not result.synchronized

    def test_force_sync_on_eligible_job(self, store):
        job = TestJob(
            lambda ctx: False,
            properties=INCREMENTAL,
            loaders=[MessageListLoader([(0, "x")])],
        )
        result = run_job(store, job, synchronize=True)
        assert result.synchronized

    def test_force_async_on_ineligible_job_raises(self, store):
        job = TestJob(lambda ctx: False, loaders=[MessageListLoader([(0, "x")])])
        with pytest.raises(JobSpecError):
            run_job(store, job, synchronize=False)


class TestExecution:
    def test_chain_terminates(self, store):
        """A chain of forwards across all parts ends via Huang detection."""
        def fn(ctx):
            for value in ctx.input_messages():
                ctx.write_state(0, value)
                if value < 40:
                    ctx.output_message(value + 1, value + 1)
            return False

        job = TestJob(fn, properties=INCREMENTAL, loaders=[MessageListLoader([(0, 0)])])
        result = run_job(store, job, synchronize=False)
        assert result.compute_invocations == 41
        table = store.get_table("state")
        assert table.get(40) == 40

    def test_empty_job_finishes(self, store):
        job = TestJob(lambda ctx: False, properties=INCREMENTAL)
        result = run_job(store, job, synchronize=False)
        assert result.compute_invocations == 0

    def test_fan_out_fan_in(self, store):
        """One seed fans out to many keys; all get invoked."""
        lock = threading.Lock()
        seen = set()

        def fn(ctx):
            with lock:
                seen.add(ctx.key)
            for message in ctx.input_messages():
                if message == "seed":
                    for target in range(1, 30):
                        ctx.output_message(target, "leaf")
            return False

        job = TestJob(fn, properties=INCREMENTAL, loaders=[MessageListLoader([(0, "seed")])])
        run_job(store, job, synchronize=False)
        assert seen == set(range(30))

    def test_per_channel_fifo_preserved(self, store):
        """incremental's contract: per (sender, receiver) order holds."""
        received = []
        lock = threading.Lock()

        def fn(ctx):
            for message in ctx.input_messages():
                if ctx.key == 0:
                    for i in range(20):
                        ctx.output_message(4, ("seq", i))  # key 4 → part 0 of 4
                elif ctx.key == 4:
                    with lock:
                        received.append(message[1])
            return False

        job = TestJob(fn, properties=INCREMENTAL, loaders=[MessageListLoader([(0, "go")])])
        run_job(store, job, synchronize=False)
        assert received == list(range(20))

    def test_enable_invokes_without_messages(self, store):
        invoked = []
        lock = threading.Lock()

        def fn(ctx):
            with lock:
                invoked.append((ctx.key, list(ctx.input_messages())))
            return False

        job = TestJob(fn, properties=INCREMENTAL, loaders=[EnableKeysLoader([5, 6])])
        run_job(store, job, synchronize=False)
        assert sorted(invoked) == [(5, []), (6, [])]

    def test_state_readable_and_writable(self, store):
        def fn(ctx):
            for message in ctx.input_messages():
                current = ctx.read_state(0) or 0
                ctx.write_state(0, current + message)
                if message > 1:
                    ctx.output_message(ctx.key, message - 1)
            return False

        job = TestJob(
            fn, properties=INCREMENTAL, loaders=[MessageListLoader([(0, 4)])]
        )
        run_job(store, job, synchronize=False)
        assert store.get_table("state").get(0) == 4 + 3 + 2 + 1

    def test_direct_output(self, store):
        exporter = CollectingExporter()

        def fn(ctx):
            for message in ctx.input_messages():
                ctx.direct_job_output(ctx.key, message)
            return False

        job = TestJob(
            fn,
            properties=INCREMENTAL,
            loaders=[MessageListLoader([(1, "a"), (2, "b")])],
            direct_exporter=exporter,
        )
        run_job(store, job, synchronize=False)
        assert exporter.pairs == {1: "a", 2: "b"}

    def test_compute_error_propagates(self, store):
        def fn(ctx):
            raise ValueError("async boom")

        job = TestJob(fn, properties=INCREMENTAL, loaders=[MessageListLoader([(0, "x")])])
        with pytest.raises(ComputeError):
            run_job(store, job, synchronize=False)

    def test_preloaded_state_via_loader(self, store):
        observed = []
        lock = threading.Lock()

        def fn(ctx):
            with lock:
                observed.append(ctx.read_state(0))
            return False

        job = TestJob(
            fn,
            properties=INCREMENTAL,
            loaders=[DictStateLoader(0, {3: "preloaded"}), EnableKeysLoader([3])],
        )
        run_job(store, job, synchronize=False)
        assert observed == ["preloaded"]


class TestWorkStealing:
    def test_stealing_requires_run_anywhere(self, store):
        job = TestJob(lambda ctx: False, properties=INCREMENTAL)
        with pytest.raises(JobSpecError):
            AsyncEngine(store, job, work_stealing=True)

    def test_stealing_job_completes_correctly(self, store):
        """With one-msg/no-continue/rare-state/no-ss-order, stealing is
        on by default and must not lose or duplicate work."""
        lock = threading.Lock()
        processed = []

        def fn(ctx):
            for message in ctx.input_messages():
                with lock:
                    processed.append(message)
                if message == "seed":
                    # all to the same part: a steal target
                    for i in range(30):
                        ctx.output_message(100 + 4 * i, i)
            return False

        properties = JobProperties(
            one_msg=True, no_continue=True, rare_state=True, no_ss_order=True
        )
        job = TestJob(fn, properties=properties, loaders=[MessageListLoader([(0, "seed")])])
        engine = AsyncEngine(store, job)
        assert engine._work_stealing
        engine.run()
        assert sorted(m for m in processed if m != "seed") == list(range(30))
