"""Loaders and exporters as standalone pieces."""

from __future__ import annotations

import pytest

from repro.ebsp.exporters import (
    CallbackExporter,
    CollectingExporter,
    ListExporter,
    TableExporter,
)
from repro.ebsp.loaders import (
    DictStateLoader,
    EnableKeysLoader,
    FunctionLoader,
    MessageListLoader,
    TableScanLoader,
)
from repro.kvstore.api import TableSpec
from repro.kvstore.local import LocalKVStore


class FakeLoaderContext:
    def __init__(self):
        self.states = []
        self.messages = []
        self.enabled = []
        self.aggregated = []

    def put_state(self, tab_idx, key, state):
        self.states.append((tab_idx, key, state))

    def send_message(self, key, message):
        self.messages.append((key, message))

    def enable(self, key):
        self.enabled.append(key)

    def aggregate_value(self, name, value):
        self.aggregated.append((name, value))


class TestLoaders:
    def test_dict_state_loader(self):
        ctx = FakeLoaderContext()
        DictStateLoader(1, {"a": 1, "b": 2}).load(ctx)
        assert sorted(ctx.states) == [(1, "a", 1), (1, "b", 2)]
        assert ctx.enabled == []

    def test_dict_state_loader_with_enable(self):
        ctx = FakeLoaderContext()
        DictStateLoader(0, {"a": 1}, enable=True).load(ctx)
        assert ctx.enabled == ["a"]

    def test_message_list_loader(self):
        ctx = FakeLoaderContext()
        MessageListLoader([(1, "x"), (2, "y")]).load(ctx)
        assert ctx.messages == [(1, "x"), (2, "y")]

    def test_enable_keys_loader(self):
        ctx = FakeLoaderContext()
        EnableKeysLoader([3, 4]).load(ctx)
        assert ctx.enabled == [3, 4]

    def test_function_loader(self):
        ctx = FakeLoaderContext()
        FunctionLoader(lambda c: c.aggregate_value("a", 1)).load(ctx)
        assert ctx.aggregated == [("a", 1)]

    def test_table_scan_loader_default_enables_all(self):
        store = LocalKVStore(default_n_parts=2)
        table = store.create_table(TableSpec(name="t"))
        table.put_many([(1, "a"), (2, "b")])
        ctx = FakeLoaderContext()
        TableScanLoader(table).load(ctx)
        assert sorted(ctx.enabled) == [1, 2]

    def test_table_scan_loader_custom_fn(self):
        store = LocalKVStore(default_n_parts=2)
        table = store.create_table(TableSpec(name="t"))
        table.put(5, "payload")
        ctx = FakeLoaderContext()
        TableScanLoader(table, lambda c, k, v: c.send_message(k, v)).load(ctx)
        assert ctx.messages == [(5, "payload")]


class TestExporters:
    def test_collecting(self):
        exporter = CollectingExporter()
        exporter.begin()
        exporter.export("k", "v")
        exporter.end()
        assert exporter.pairs == {"k": "v"}
        assert exporter.began and exporter.ended

    def test_callback(self):
        out = []
        CallbackExporter(lambda k, v: out.append((k, v))).export(1, 2)
        assert out == [(1, 2)]

    def test_table_exporter(self):
        store = LocalKVStore(default_n_parts=2)
        table = store.create_table(TableSpec(name="sink"))
        exporter = TableExporter(table)
        exporter.export("k", 9)
        assert table.get("k") == 9

    def test_list_exporter_keeps_duplicates(self):
        exporter = ListExporter()
        exporter.export("k", 1)
        exporter.export("k", 2)
        assert exporter.pairs == [("k", 1), ("k", 2)]
