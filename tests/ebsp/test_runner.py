"""The top-level runner: plan derivation and engine selection."""

from __future__ import annotations

import pytest

from repro.errors import JobSpecError
from repro.ebsp.aggregators import SumAggregator
from repro.ebsp.loaders import MessageListLoader
from repro.ebsp.properties import JobProperties
from repro.ebsp.runner import plan_for, run_job

from tests.ebsp.jobs import TestJob

NO_SYNC_PROPS = JobProperties(incremental=True, no_continue=True)


class TestPlanFor:
    def test_plain_job_synchronizes(self):
        plan = plan_for(TestJob(lambda ctx: False))
        assert not plan.no_sync
        assert plan.no_sort  # nothing declared needs_order

    def test_detects_aggregators(self):
        job = TestJob(
            lambda ctx: False,
            properties=NO_SYNC_PROPS,
            aggregators={"x": SumAggregator()},
        )
        assert not plan_for(job).no_sync

    def test_detects_aborter(self):
        job = TestJob(
            lambda ctx: False,
            properties=NO_SYNC_PROPS,
            aborter=lambda step, aggs: False,
        )
        plan = plan_for(job)
        assert not plan.no_client_sync
        assert not plan.no_sync


class TestDispatch:
    def test_default_follows_plan(self, local_store):
        job = TestJob(
            lambda ctx: False,
            properties=NO_SYNC_PROPS,
            loaders=[MessageListLoader([(0, 1)])],
        )
        assert not run_job(local_store, job).synchronized

    def test_plain_job_runs_synchronized(self, local_store):
        job = TestJob(lambda ctx: False, loaders=[MessageListLoader([(0, 1)])])
        assert run_job(local_store, job).synchronized

    def test_explicit_sync_override(self, local_store):
        job = TestJob(
            lambda ctx: False,
            properties=NO_SYNC_PROPS,
            loaders=[MessageListLoader([(0, 1)])],
        )
        assert run_job(local_store, job, synchronize=True).synchronized

    def test_explicit_async_on_ineligible_rejected(self, local_store):
        job = TestJob(lambda ctx: False, loaders=[MessageListLoader([(0, 1)])])
        with pytest.raises(JobSpecError):
            run_job(local_store, job, synchronize=False)

    def test_same_job_both_modes_same_answer(self, local_store):
        """The paper's switch: semantics identical, barriers optional."""

        def fn(ctx):
            for value in ctx.input_messages():
                ctx.write_state(0, (ctx.read_state(0) or 0) + value)
                if value > 1:
                    ctx.output_message(ctx.key + 1, value - 1)
            return False

        def build():
            return TestJob(
                fn,
                properties=NO_SYNC_PROPS,
                loaders=[MessageListLoader([(0, 5)])],
            )

        run_job(local_store, build(), synchronize=True)
        sync_state = dict(local_store.get_table("state").items())
        local_store.get_table("state").clear()
        run_job(local_store, build(), synchronize=False)
        async_state = dict(local_store.get_table("state").items())
        assert async_state == sync_state == {0: 5, 1: 4, 2: 3, 3: 2, 4: 1}
