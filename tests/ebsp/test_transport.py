"""Spill transport through the transport table (paper §IV-A)."""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future

import pytest

from repro.ebsp.transport import (
    CLIENT_SRC,
    CONT,
    CREATE,
    MSG,
    CombiningBundle,
    SpillWriter,
    collect_step_records,
    create_transport_table,
    encode_spill,
    is_compact_spill,
    iter_spill_records,
    spill_record_count,
)
from repro.kvstore.local import LocalKVStore
from repro.kvstore.partitioned import PartitionedKVStore
from repro.util.hashing import part_for_key


@pytest.fixture
def setup():
    store = LocalKVStore(default_n_parts=4)
    transport = create_transport_table(store, "xport", 4)
    yield store, transport
    store.close()


def part_of(key):
    return part_for_key(key, 4)


class TestSpillWriter:
    def test_spill_lands_in_destination_part(self, setup):
        store, transport = setup
        writer = SpillWriter(transport, src_part=0, step=1, n_parts=4, part_of=part_of)
        writer.add((MSG, 3, "hello"))  # int key 3 → part 3
        writer.flush_all()
        keys = [k for k, _ in transport.items()]
        assert len(keys) == 1
        dest_part, step, src_part, seq = keys[0]
        assert dest_part == 3 and step == 1 and src_part == 0
        assert transport.part_of(keys[0]) == 3

    def test_batching_by_size(self, setup):
        store, transport = setup
        writer = SpillWriter(
            transport, src_part=0, step=0, n_parts=4, part_of=part_of, batch_size=3
        )
        for i in range(7):
            writer.add((MSG, 4, i))  # all to part 0
        # two full batches spilled eagerly, one partial still buffered
        assert len(transport.items()) == 2
        writer.flush_all()
        assert len(transport.items()) == 3
        assert writer.records_written == 7

    def test_hold_defers_everything(self, setup):
        store, transport = setup
        writer = SpillWriter(
            transport, src_part=0, step=0, n_parts=4, part_of=part_of, batch_size=1, hold=True
        )
        for i in range(5):
            writer.add((MSG, 0, i))
        assert transport.items() == []
        writer.flush_all()
        assert writer.records_written == 5

    def test_discard_drops_buffers(self, setup):
        store, transport = setup
        writer = SpillWriter(
            transport, src_part=0, step=0, n_parts=4, part_of=part_of, hold=True
        )
        writer.add((MSG, 0, "gone"))
        writer.discard()
        writer.flush_all()
        assert transport.items() == []
        assert writer.records_written == 0

    def test_kind_counts(self, setup):
        store, transport = setup
        writer = SpillWriter(transport, src_part=0, step=0, n_parts=4, part_of=part_of)
        writer.add((MSG, 0, "m"))
        writer.add((MSG, 1, "m"))
        writer.add((CONT, 2))
        writer.flush_all()
        assert writer.messages_added == 2
        assert writer.continues_added == 1

    def test_on_spill_callback(self, setup):
        store, transport = setup
        spilled = []
        writer = SpillWriter(
            transport,
            src_part=1,
            step=2,
            n_parts=4,
            part_of=part_of,
            on_spill=lambda part, n: spilled.append((part, n)),
        )
        writer.add((MSG, 0, "x"))
        writer.add((MSG, 0, "y"))
        writer.flush_all()
        assert spilled == [(0, 2)]


class TestPipelinedTransport:
    """The asynchronous, batched spill path added for pipelined transport."""

    def test_combining_stops_at_spill_boundary(self, setup):
        store, transport = setup
        writer = SpillWriter(
            transport,
            src_part=0,
            step=0,
            n_parts=4,
            part_of=part_of,
            batch_size=2,
            combiner=lambda a, b: a + b,
        )
        writer.add((MSG, 4, 1))
        writer.add((MSG, 4, 2))  # combines in place; buffer stays at 1
        writer.add((MSG, 8, 3))  # fills the buffer → sealed
        writer.add((MSG, 4, 10))  # fresh buffer: must NOT merge into the sealed spill
        writer.flush_all()
        spills = sorted(transport.items(), key=lambda kv: kv[0][3])
        assert [records for _, records in spills] == [
            [(MSG, 4, 3), (MSG, 8, 3)],
            [(MSG, 4, 10)],
        ]
        assert writer.messages_combined == 1

    def test_hold_leaks_nothing_before_flush(self, tmp_path):
        store = PartitionedKVStore(n_partitions=4)
        try:
            transport = create_transport_table(store, "xport", 4)
            writer = SpillWriter(
                transport,
                src_part=0,
                step=0,
                n_parts=4,
                part_of=part_of,
                batch_size=1,
                hold=True,
                spills_per_batch=4,
            )
            for i in range(12):
                writer.add((MSG, i, "payload"))
            assert transport.items() == []  # nothing before the commit point
            writer.flush_all()
            # held buffers seal once per destination part at the commit point
            assert len(transport.items()) == 4
            assert sum(len(records) for _, records in transport.items()) == 12
            assert writer.records_written == 12
        finally:
            store.close()

    def test_discard_after_partial_spills(self, setup):
        store, transport = setup
        writer = SpillWriter(
            transport, src_part=0, step=0, n_parts=4, part_of=part_of, batch_size=2
        )
        writer.add((MSG, 4, "a"))
        writer.add((MSG, 4, "b"))  # sealed and dispatched (spills_per_batch=1)
        writer.add((MSG, 4, "c"))  # still buffered
        writer.discard()
        # the dispatched spill is already out — matching the eager
        # pre-pipeline semantics — but the buffered record is gone
        assert [records for _, records in transport.items()] == [
            [(MSG, 4, "a"), (MSG, 4, "b")]
        ]
        assert writer.records_written == 2
        writer.flush_all()
        assert len(transport.items()) == 1

    def test_discard_drops_sealed_but_undispatched(self, setup):
        store, transport = setup
        writer = SpillWriter(
            transport,
            src_part=0,
            step=0,
            n_parts=4,
            part_of=part_of,
            batch_size=1,
            spills_per_batch=8,
        )
        writer.add((MSG, 4, "x"))  # sealed into the ready batch, not dispatched
        writer.add((MSG, 4, "y"))
        writer.discard()
        assert transport.items() == []
        assert writer.records_written == 0
        assert writer.spills_sealed == 0

    def test_fifo_per_src_dest_on_partitioned_store(self, tmp_path):
        store = PartitionedKVStore(n_partitions=4)
        try:
            transport = create_transport_table(store, "xport", 4)
            writer = SpillWriter(
                transport,
                src_part=2,
                step=1,
                n_parts=4,
                part_of=part_of,
                batch_size=1,
                max_in_flight=3,
                spills_per_batch=2,
            )
            for i in range(40):
                writer.add((MSG, 4, i))  # every record → part 0, one spill each
            writer.flush_all()
            spills = sorted(transport.items(), key=lambda kv: kv[0][3])
            # contiguous sequence numbers, records in add() order
            assert [key[3] for key, _ in spills] == list(range(40))
            assert [records[0][2] for _, records in spills] == list(range(40))
        finally:
            store.close()

    def test_coalescing_reduces_dispatches(self, setup):
        store, transport = setup
        writer = SpillWriter(
            transport,
            src_part=0,
            step=0,
            n_parts=4,
            part_of=part_of,
            batch_size=1,
            spills_per_batch=4,
        )
        for i in range(16):
            writer.add((MSG, 4, i))
        writer.flush_all()
        assert writer.spills_sealed == 16
        assert writer.batches_dispatched == 4  # 4 spills per marshalled request
        assert len(transport.items()) == 16

    def test_blocking_mode_writes_synchronously(self, setup):
        store, transport = setup
        writer = SpillWriter(
            transport,
            src_part=0,
            step=0,
            n_parts=4,
            part_of=part_of,
            batch_size=1,
            pipelined=False,
        )
        writer.add((MSG, 4, "x"))
        assert len(transport.items()) == 1  # landed before flush_all
        writer.flush_all()
        assert writer.batches_dispatched == 1
        assert writer.in_flight_hwm == 0

    def test_in_flight_window_is_bounded(self):
        """With a slow table the writer must block once the window fills."""

        class _SlowTable:
            def __init__(self):
                self.data = {}
                self.pending = []
                self.max_pending = 0
                self._lock = threading.Lock()
                self._stop = False
                self._thread = threading.Thread(target=self._drain, daemon=True)
                self._thread.start()

            def put_many_async(self, pairs):
                futures = []
                with self._lock:
                    for key, records in pairs:
                        future = Future()
                        self.pending.append((key, records, future))
                        futures.append(future)
                    self.max_pending = max(self.max_pending, len(self.pending))
                return futures

            def _drain(self):
                while not self._stop:
                    with self._lock:
                        item = self.pending.pop(0) if self.pending else None
                        self.max_pending = max(self.max_pending, len(self.pending) + (1 if item else 0))
                    if item is None:
                        time.sleep(0.001)
                        continue
                    time.sleep(0.002)  # simulate transport latency
                    key, records, future = item
                    self.data[key] = records
                    future.set_result(None)

            def stop(self):
                self._stop = True
                self._thread.join()

        table = _SlowTable()
        try:
            writer = SpillWriter(
                table,  # type: ignore[arg-type]
                src_part=0,
                step=0,
                n_parts=4,
                part_of=part_of,
                batch_size=1,
                max_in_flight=3,
                spills_per_batch=1,
            )
            for i in range(20):
                writer.add((MSG, 4, i))
            writer.flush_all()
        finally:
            table.stop()
        assert len(table.data) == 20
        # window of 3 plus the one batch just dispatched
        assert writer.in_flight_hwm <= 4
        assert table.max_pending <= 4


class TestCompactCodec:
    RECORDS = [
        (MSG, 4, "hello"),
        (CONT, 2),
        (MSG, 8, "world"),
        (CREATE, 3, 0, {"s": 1}),
        (MSG, 4, "again"),
    ]

    def test_roundtrip_preserves_records(self):
        encoded = encode_spill(self.RECORDS)
        assert is_compact_spill(encoded)
        decoded = list(iter_spill_records(encoded))
        # per-kind relative order is preserved; set equality plus
        # message order is the delivery contract
        assert sorted(map(repr, decoded)) == sorted(map(repr, self.RECORDS))
        messages = [r for r in decoded if r[0] == MSG]
        assert messages == [(MSG, 4, "hello"), (MSG, 8, "world"), (MSG, 4, "again")]

    def test_record_count_both_codecs(self):
        assert spill_record_count(self.RECORDS) == 5
        assert spill_record_count(encode_spill(self.RECORDS)) == 5

    def test_raw_list_passes_through(self):
        assert not is_compact_spill(self.RECORDS)
        assert list(iter_spill_records(self.RECORDS)) == self.RECORDS

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            encode_spill([("?", 0)])

    def test_compact_writer_spills_are_collectable(self, setup):
        store, transport = setup
        writer = SpillWriter(
            transport, src_part=0, step=0, n_parts=4, part_of=part_of, compact=True
        )
        writer.add((MSG, 0, "m"))
        writer.add((CONT, 4))
        writer.add((CREATE, 8, 0, "state"))
        writer.flush_all()
        for _, value in transport.items():
            assert is_compact_spill(value)
        view = transport._parts[0]
        bundles, _ = collect_step_records(view, 0, None)
        assert bundles[0].messages == ["m"] and bundles[0].enabled
        assert bundles[4].enabled and bundles[4].messages == []
        assert bundles[8].created == [(0, "state")]

    def test_codec_byte_sample_recorded(self, setup):
        store, transport = setup
        writer = SpillWriter(
            transport, src_part=0, step=0, n_parts=4, part_of=part_of, compact=True
        )
        for i in range(64):
            writer.add((MSG, 0, i))
        writer.flush_all()
        assert writer.codec_sample_compact_bytes > 0
        # struct-of-arrays drops the per-record tuple overhead
        assert writer.codec_sample_compact_bytes < writer.codec_sample_raw_bytes

    def test_discard_accounts_compact_spills(self, setup):
        store, transport = setup
        writer = SpillWriter(
            transport,
            src_part=0,
            step=0,
            n_parts=4,
            part_of=part_of,
            batch_size=1,
            spills_per_batch=8,
            compact=True,
        )
        writer.add((MSG, 4, "x"))  # sealed (encoded) but not dispatched
        writer.add((CONT, 4))
        writer.discard()
        assert transport.items() == []
        assert writer.records_written == 0
        assert writer.spills_sealed == 0


class TestCollect:
    def _write(self, transport, step, records, src=0):
        writer = SpillWriter(transport, src_part=src, step=step, n_parts=4, part_of=part_of)
        for record in records:
            writer.add(record)
        writer.flush_all()

    def test_only_requested_step_collected(self, setup):
        store, transport = setup
        self._write(transport, 1, [(MSG, 0, "now")])
        self._write(transport, 2, [(MSG, 0, "later")])
        view = transport._parts[0]  # LocalTable internals are fine in tests
        bundles, consumed = collect_step_records(view, 1, None)
        assert list(bundles[0].messages) == ["now"]
        assert len(consumed) == 1

    def test_messages_enable_continue_enables(self, setup):
        store, transport = setup
        self._write(transport, 0, [(MSG, 0, "m"), (CONT, 4)])
        view = transport._parts[0]
        bundles, _ = collect_step_records(view, 0, None)
        assert bundles[0].enabled
        assert bundles[4].enabled and bundles[4].messages == []

    def test_creations_do_not_enable(self, setup):
        store, transport = setup
        self._write(transport, 0, [(CREATE, 0, 0, "state")])
        view = transport._parts[0]
        bundles, _ = collect_step_records(view, 0, None)
        assert not bundles[0].enabled
        assert bundles[0].created == [(0, "state")]

    def test_unknown_kind_rejected(self, setup):
        store, transport = setup
        transport.put((0, 0, 0, 0), [("?", 0)])
        view = transport._parts[0]
        with pytest.raises(ValueError):
            collect_step_records(view, 0, None)


class TestCombiningBundle:
    def test_combiner_applied_pairwise(self):
        bundle = CombiningBundle()
        for value in [1, 2, 3]:
            bundle.add_message(value, lambda a, b: a + b)
        assert bundle.messages == [6]

    def test_decline_keeps_both(self):
        bundle = CombiningBundle()
        bundle.add_message("a", lambda a, b: None)
        bundle.add_message("b", lambda a, b: None)
        assert bundle.messages == ["a", "b"]

    def test_partial_decline(self):
        # combine only equal-parity ints
        def combiner(a, b):
            return a + b if (a % 2) == (b % 2) else None

        bundle = CombiningBundle()
        for value in [2, 4, 3]:
            bundle.add_message(value, combiner)
        assert bundle.messages == [6, 3]

    def test_no_combiner(self):
        bundle = CombiningBundle()
        bundle.add_message(1, None)
        bundle.add_message(2, None)
        assert bundle.messages == [1, 2]
