"""Property: every message is delivered exactly once, one step later.

Hypothesis generates arbitrary multi-step send plans (who sends what to
whom in which step); a recording job executes the plan and the test
checks the full delivery ledger — no loss, no duplication, no early or
late delivery, across both the collected and no-collect engine paths
and across stores.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Tuple

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.ebsp.loaders import MessageListLoader
from repro.ebsp.runner import run_job
from repro.kvstore.local import LocalKVStore
from repro.kvstore.partitioned import PartitionedKVStore

from tests.ebsp.jobs import TestJob

MAX_STEPS = 4
KEYS = st.integers(min_value=0, max_value=12)

# plan: step -> sender -> list of destinations
plan_strategy = st.dictionaries(
    st.integers(min_value=0, max_value=MAX_STEPS - 1),
    st.dictionaries(KEYS, st.lists(KEYS, max_size=4), max_size=5),
    max_size=MAX_STEPS,
)


def _run_plan(plan: Dict[int, Dict[int, List[int]]], store) -> List[Tuple[int, int, tuple]]:
    """Execute the plan; returns the receipt ledger (step, receiver, msg)."""
    ledger: List[Tuple[int, int, tuple]] = []
    lock = threading.Lock()

    def fn(ctx):
        with lock:
            for message in ctx.input_messages():
                ledger.append((ctx.step_num, ctx.key, message))
        for dest in plan.get(ctx.step_num, {}).get(ctx.key, []):
            ctx.output_message(dest, (ctx.step_num, ctx.key, dest))
        # stay enabled while this key still has sends scheduled later
        return any(
            ctx.key in plan.get(later, {})
            for later in range(ctx.step_num + 1, MAX_STEPS)
        )

    initial = sorted({sender for senders in plan.values() for sender in senders})
    if not initial:
        return ledger
    job = TestJob(fn, loaders=[MessageListLoader([(k, (-1, -1, k)) for k in initial])])
    run_job(store, job, max_steps=MAX_STEPS + 2)
    return ledger


def _expected(plan: Dict[int, Dict[int, List[int]]]) -> List[Tuple[int, int, tuple]]:
    """What the ledger must contain: each send, delivered one step later.

    A send only happens if the sender was invoked in that step — i.e.
    it was a step-0 seed, received a message, or continued (the job
    continues while later sends are scheduled, so all plan senders are
    live in every planned step).
    """
    expected = []
    initial = {sender for senders in plan.values() for sender in senders}
    for key in sorted(initial):
        expected.append((0, key, (-1, -1, key)))  # the seeds themselves
    for step, senders in plan.items():
        for sender, destinations in senders.items():
            for dest in destinations:
                expected.append((step + 1, dest, (step, sender, dest)))
    return expected


@settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(plan=plan_strategy)
def test_exactly_once_delivery_local(plan):
    store = LocalKVStore(default_n_parts=3)
    try:
        ledger = _run_plan(plan, store)
        assert sorted(ledger) == sorted(_expected(plan))
    finally:
        store.close()


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(plan=plan_strategy)
def test_exactly_once_delivery_partitioned(plan):
    store = PartitionedKVStore(n_partitions=3)
    try:
        ledger = _run_plan(plan, store)
        assert sorted(ledger) == sorted(_expected(plan))
    finally:
        store.close()


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(plan=plan_strategy)
def test_exactly_once_delivery_with_fault_tolerance(plan):
    """The commit-point machinery must not lose or double anything."""
    store = LocalKVStore(default_n_parts=3)
    try:
        ledger: List[Tuple[int, int, tuple]] = []
        lock = threading.Lock()

        def fn(ctx):
            with lock:
                for message in ctx.input_messages():
                    ledger.append((ctx.step_num, ctx.key, message))
            for dest in plan.get(ctx.step_num, {}).get(ctx.key, []):
                ctx.output_message(dest, (ctx.step_num, ctx.key, dest))
            return any(
                ctx.key in plan.get(later, {})
                for later in range(ctx.step_num + 1, MAX_STEPS)
            )

        initial = sorted({sender for senders in plan.values() for sender in senders})
        if initial:
            job = TestJob(
                fn, loaders=[MessageListLoader([(k, (-1, -1, k)) for k in initial])]
            )
            run_job(store, job, max_steps=MAX_STEPS + 2, fault_tolerance=True)
        assert sorted(ledger) == sorted(_expected(plan))
    finally:
        store.close()
