"""Aggregator semantics + the algebraic properties the engine relies on."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.ebsp.aggregators import (
    Aggregator,
    AndAggregator,
    CollectAggregator,
    CountAggregator,
    MaxAggregator,
    MinAggregator,
    OrAggregator,
    SumAggregator,
    TopKAggregator,
)


def fold(agg: Aggregator, values):
    partial = agg.create()
    for value in values:
        partial = agg.add(partial, value)
    return agg.finish(partial)


class TestBehaviour:
    def test_sum(self):
        assert fold(SumAggregator(), [1, 2, 3]) == 6

    def test_sum_custom_zero(self):
        assert fold(SumAggregator(0.0), [0.5, 0.25]) == 0.75

    def test_count_ignores_values(self):
        assert fold(CountAggregator(), ["a", "b", "c"]) == 3

    def test_min_empty_is_none(self):
        assert fold(MinAggregator(), []) is None

    def test_min(self):
        assert fold(MinAggregator(), [5, 2, 9]) == 2

    def test_max(self):
        assert fold(MaxAggregator(), [5, 2, 9]) == 9

    def test_and(self):
        assert fold(AndAggregator(), [True, True]) is True
        assert fold(AndAggregator(), [True, False]) is False
        assert fold(AndAggregator(), []) is True

    def test_or(self):
        assert fold(OrAggregator(), [False, True]) is True
        assert fold(OrAggregator(), []) is False

    def test_topk(self):
        assert fold(TopKAggregator(3), [5, 1, 9, 7, 3]) == [9, 7, 5]

    def test_topk_with_key(self):
        agg = TopKAggregator(2, key=lambda pair: pair[0])
        result = fold(agg, [(1, "lo"), (9, "hi"), (5, "mid")])
        assert [score for score, _ in result] == [9, 5]

    def test_topk_fewer_than_k(self):
        assert fold(TopKAggregator(5), [2, 1]) == [2, 1]

    def test_collect(self):
        assert sorted(fold(CollectAggregator(), [3, 1, 2])) == [1, 2, 3]

    def test_collect_limit(self):
        assert len(fold(CollectAggregator(limit=2), range(10))) == 2

    def test_bad_construction(self):
        with pytest.raises(ValueError):
            TopKAggregator(0)
        with pytest.raises(ValueError):
            CollectAggregator(limit=0)


_aggs = st.sampled_from(
    [SumAggregator(), CountAggregator(), MinAggregator(), MaxAggregator(), AndAggregator(), OrAggregator()]
)


@given(_aggs, st.lists(st.integers(min_value=-100, max_value=100)), st.integers(min_value=0, max_value=10))
def test_merge_equals_any_split(agg, values, split_at):
    """merge(fold(left), fold(right)) == fold(all) — the property that
    makes per-part partials correct regardless of how keys partition."""
    split_at = min(split_at, len(values))
    left, right = values[:split_at], values[split_at:]

    def partial(vals):
        p = agg.create()
        for v in vals:
            p = agg.add(p, v)
        return p

    merged = agg.merge(partial(left), partial(right))
    assert agg.finish(merged) == agg.finish(partial(values))


@given(_aggs, st.lists(st.integers(min_value=-50, max_value=50), max_size=20))
def test_merge_commutative(agg, values):
    half = len(values) // 2
    a, b = values[:half], values[half:]

    def partial(vals):
        p = agg.create()
        for v in vals:
            p = agg.add(p, v)
        return p

    assert agg.finish(agg.merge(partial(a), partial(b))) == agg.finish(
        agg.merge(partial(b), partial(a))
    )


@given(st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1), st.integers(min_value=1, max_value=5))
def test_topk_matches_sorted(values, k):
    agg = TopKAggregator(k)
    assert fold(agg, values) == sorted(values, reverse=True)[:k]


class TestAddMany:
    """The batch data plane's column fold (default and vectorized)."""

    def test_sum_typed_column_matches_loop(self):
        agg = SumAggregator(0.0)
        col = np.asarray([0.5, 1.5, 2.5])
        assert agg.add_many(10.0, col) == fold(agg, [10.0, 0.5, 1.5, 2.5])

    def test_sum_list_uses_sequential_default(self):
        agg = SumAggregator(0)
        assert agg.add_many(1, [2, 3, 4]) == 10

    def test_sum_empty_column_is_identity(self):
        agg = SumAggregator(0.0)
        assert agg.add_many(5.0, np.empty(0)) == 5.0
        assert agg.add_many(5.0, []) == 5.0

    def test_count_column(self):
        agg = CountAggregator()
        assert agg.add_many(2, np.arange(7)) == 9
        assert agg.add_many(2, ["a", "b"]) == 4

    def test_min_max_typed_column(self):
        col = np.asarray([4, -2, 9], dtype=np.int64)
        assert MinAggregator().add_many(None, col) == -2
        assert MaxAggregator().add_many(None, col) == 9
        assert MinAggregator().add_many(-5, col) == -5
        assert MaxAggregator().add_many(20, col) == 20

    def test_min_max_empty_column_keeps_partial(self):
        assert MinAggregator().add_many(None, np.empty(0)) is None
        assert MaxAggregator().add_many(3, np.empty(0)) == 3

    def test_object_column_takes_default_path(self):
        # an object-dtype ndarray is not a typed column; the sequential
        # fold still applies per-element type checks
        col = np.empty(2, dtype=object)
        col[:] = [3, "x"]
        with pytest.raises(TypeError):
            MinAggregator().add_many(None, col)


class TestMixedTypeRejection:
    """Min/Max refuse order-dependent cross-family comparisons."""

    def test_add_str_vs_int_names_aggregator(self):
        with pytest.raises(TypeError, match="MinAggregator"):
            MinAggregator().add(3, "abc")
        with pytest.raises(TypeError, match="MaxAggregator"):
            MaxAggregator().add("abc", 3)

    def test_merge_rejects_mixed_partials(self):
        with pytest.raises(TypeError, match="MinAggregator"):
            MinAggregator().merge(1.5, b"xx")
        with pytest.raises(TypeError, match="MaxAggregator"):
            MaxAggregator().merge("a", 0)

    def test_numeric_family_mixes_freely(self):
        agg = MinAggregator()
        assert agg.add(True, np.float64(0.5)) == 0.5
        assert agg.add(np.int64(3), 2) == 2
        assert agg.merge(1, 0.5) == 0.5

    def test_str_and_bytes_families(self):
        assert MinAggregator().add("b", "a") == "a"
        assert MaxAggregator().add(b"a", b"c") == b"c"
        with pytest.raises(TypeError, match="cannot order"):
            MinAggregator().add("a", b"a")

    def test_sets_rejected_even_when_same_type(self):
        # sets order partially: min({1},{2}) is order-dependent
        with pytest.raises(TypeError, match="order-dependent"):
            MaxAggregator().add({1}, {2})

    def test_same_orderable_type_accepted(self):
        assert MinAggregator().add((1, 2), (1, 1)) == (1, 1)

    def test_none_partial_skips_check(self):
        assert MinAggregator().add(None, "anything") == "anything"
        assert MinAggregator().merge(None, 4) == 4
