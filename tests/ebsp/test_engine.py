"""The synchronous engine: BSP semantics, selective enablement, outputs."""

from __future__ import annotations

import threading

import pytest

from repro.errors import (
    AggregatorError,
    ComputeError,
    JobSpecError,
    PropertyViolationError,
)
from repro.ebsp.aggregators import CollectAggregator, MaxAggregator, SumAggregator
from repro.ebsp.engine import SyncEngine
from repro.ebsp.exporters import CollectingExporter
from repro.ebsp.loaders import (
    DictStateLoader,
    EnableKeysLoader,
    FunctionLoader,
    MessageListLoader,
)
from repro.ebsp.properties import JobProperties
from repro.ebsp.runner import run_job
from repro.kvstore.api import TableSpec

from tests.ebsp.jobs import TestJob


class TestBarrierSemantics:
    def test_message_delivered_next_step(self, fast_store):
        """Figure 1: a message sent in step i is received in step i+1."""
        delivery_steps = {}

        def fn(ctx):
            for message in ctx.input_messages():
                delivery_steps[message] = ctx.step_num
            if ctx.step_num == 0 and ctx.key == 0:
                ctx.output_message(1, "from-step-0")
            return False

        run_job(fast_store, TestJob(fn, loaders=[EnableKeysLoader([0])]))
        assert delivery_steps == {"from-step-0": 1}

    def test_all_parts_complete_before_next_step(self, partitioned_store):
        """No component may start step i+1 until every component has
        finished step i — the global barrier."""
        step_done = {0: threading.Event()}
        violations = []

        def fn(ctx):
            if ctx.step_num == 0:
                ctx.output_message(ctx.key, "again")
            if ctx.step_num == 1 and not step_done[0].is_set():
                violations.append(ctx.key)
            return False

        class Marker(TestJob):
            pass

        job = TestJob(fn, loaders=[EnableKeysLoader(range(8))])
        engine = SyncEngine(partitioned_store, job)

        # wrap _run_step to mark when step 0 fully completes
        original = engine._run_step

        def wrapped(step):
            original(step)
            if step == 0:
                step_done[0].set()

        engine._run_step = wrapped
        engine.run()
        assert violations == []

    def test_steps_counted(self, fast_store):
        def fn(ctx):
            if ctx.step_num < 4:
                ctx.output_message(ctx.key, "go")
            return False

        result = run_job(fast_store, TestJob(fn, loaders=[EnableKeysLoader([0])]))
        assert result.steps == 5
        assert result.barriers == 5

    def test_empty_job_zero_steps(self, fast_store):
        result = run_job(fast_store, TestJob(lambda ctx: False))
        assert result.steps == 0
        assert result.compute_invocations == 0


class TestSelectiveEnablement:
    def test_only_messaged_components_run(self, fast_store):
        invoked = []
        lock = threading.Lock()

        def fn(ctx):
            with lock:
                invoked.append((ctx.step_num, ctx.key))
            if ctx.step_num == 0:
                ctx.output_message(ctx.key + 100, "wake")
            return False

        run_job(fast_store, TestJob(fn, loaders=[EnableKeysLoader([1, 2])]))
        assert sorted(invoked) == [(0, 1), (0, 2), (1, 101), (1, 102)]

    def test_continue_signal_enables_without_message(self, fast_store):
        invoked = []
        lock = threading.Lock()

        def fn(ctx):
            with lock:
                invoked.append(ctx.step_num)
            return ctx.step_num < 2  # continue twice, then stop

        result = run_job(fast_store, TestJob(fn, loaders=[EnableKeysLoader([5])]))
        assert invoked == [0, 1, 2]
        assert result.steps == 3

    def test_component_without_state_entry_can_run(self, fast_store):
        """A component exists when it has state entries *or* messages."""
        seen_states = []

        def fn(ctx):
            seen_states.append(ctx.read_state(0))
            return False

        run_job(fast_store, TestJob(fn, loaders=[MessageListLoader([(9, "hi")])]))
        assert seen_states == [None]


class TestLocalState:
    def test_write_then_read_next_step(self, fast_store):
        observed = []

        def fn(ctx):
            if ctx.step_num == 0:
                ctx.write_state(0, "written")
                ctx.output_message(ctx.key, "again")
            else:
                observed.append(ctx.read_state(0))
            return False

        run_job(fast_store, TestJob(fn, loaders=[EnableKeysLoader([0])]))
        assert observed == ["written"]

    def test_write_visible_within_invocation(self, fast_store):
        checks = []

        def fn(ctx):
            ctx.write_state(0, 42)
            checks.append(ctx.read_state(0))
            return False

        run_job(fast_store, TestJob(fn, loaders=[EnableKeysLoader([0])]))
        assert checks == [42]

    def test_delete_state(self, fast_store):
        def fn(ctx):
            if ctx.step_num == 0:
                ctx.delete_state(0)
                ctx.output_message(ctx.key, "x")
                return False
            assert ctx.read_state(0) is None
            return False

        job = TestJob(fn, loaders=[DictStateLoader(0, {0: "to-delete"}, enable=True)])
        run_job(fast_store, job)
        assert fast_store.get_table("state").get(0) is None

    def test_multiple_state_tables(self, fast_store):
        """State can be factored into several tables (Section II)."""
        read_back = {}

        def fn(ctx):
            if ctx.step_num == 0:
                ctx.write_state(0, "alpha")
                ctx.write_state(1, "beta")
                ctx.output_message(ctx.key, "go")
            else:
                read_back["a"] = ctx.read_state(0)
                read_back["b"] = ctx.read_state(1)
            return False

        job = TestJob(fn, state_tables=["ta", "tb"], loaders=[EnableKeysLoader([3])])
        run_job(fast_store, job)
        assert read_back == {"a": "alpha", "b": "beta"}

    def test_read_write_state_in_place_mutation(self, fast_store):
        def fn(ctx):
            if ctx.step_num == 0:
                state = ctx.read_write_state(0)
                state["count"] += 1
                ctx.output_message(ctx.key, "go")
                return False
            assert ctx.read_state(0)["count"] == 1
            return False

        job = TestJob(fn, loaders=[DictStateLoader(0, {0: {"count": 0}}, enable=True)])
        run_job(fast_store, job)

    def test_create_state_for_other_component(self, fast_store):
        def fn(ctx):
            if ctx.step_num == 0:
                ctx.create_state(0, 77, {"born": True})
            return False

        run_job(fast_store, TestJob(fn, loaders=[EnableKeysLoader([0])]))
        assert fast_store.get_table("state").get(77) == {"born": True}

    def test_conflicting_creations_merged(self, fast_store):
        def fn(ctx):
            if ctx.step_num == 0:
                ctx.create_state(0, 99, {ctx.key})
            return False

        job = TestJob(
            fn,
            loaders=[EnableKeysLoader([0, 1])],
            state_merger=lambda s1, s2: s1 | s2,
        )
        run_job(fast_store, job)
        assert fast_store.get_table("state").get(99) == {0, 1}

    def test_bad_table_index(self, fast_store):
        def fn(ctx):
            ctx.read_state(5)
            return False

        with pytest.raises(ComputeError):
            run_job(fast_store, TestJob(fn, loaders=[EnableKeysLoader([0])]))


class TestCombiner:
    def test_combiner_merges_messages(self, fast_store):
        received = []

        def fn(ctx):
            if ctx.step_num == 0:
                ctx.output_message(100, 1)
            else:
                received.extend(ctx.input_messages())
            return False

        job = TestJob(
            fn,
            loaders=[EnableKeysLoader(range(5))],
            combiner=lambda a, b: a + b,
        )
        run_job(fast_store, job)
        assert sum(received) == 5
        # per-part combining plus bundle combining collapses everything
        # destined to one key in one step
        assert len(received) == 1

    def test_combiner_can_decline(self, fast_store):
        received = []

        def fn(ctx):
            if ctx.step_num == 0:
                ctx.output_message(100, ctx.key)
            else:
                received.extend(ctx.input_messages())
            return False

        job = TestJob(
            fn,
            loaders=[EnableKeysLoader(range(4))],
            combiner=lambda a, b: None,  # always decline
        )
        run_job(fast_store, job)
        assert sorted(received) == [0, 1, 2, 3]

    def test_no_combiner_by_default(self, fast_store):
        received = []

        def fn(ctx):
            if ctx.step_num == 0:
                ctx.output_message(100, ctx.key)
            else:
                received.extend(ctx.input_messages())
            return False

        run_job(fast_store, TestJob(fn, loaders=[EnableKeysLoader(range(4))]))
        assert sorted(received) == [0, 1, 2, 3]


class TestAggregators:
    def test_values_visible_next_step(self, fast_store):
        observed = {}

        def fn(ctx):
            observed[ctx.step_num] = ctx.get_aggregate_value("total")
            ctx.aggregate_value("total", ctx.step_num + 1)
            if ctx.step_num < 2:
                ctx.output_message(ctx.key, "go")
            return False

        job = TestJob(
            fn,
            loaders=[EnableKeysLoader([0])],
            aggregators={"total": SumAggregator()},
        )
        result = run_job(fast_store, job)
        assert observed == {0: 0, 1: 1, 2: 2}
        assert result.aggregates == {"total": 3}

    def test_aggregation_across_components(self, fast_store):
        def fn(ctx):
            ctx.aggregate_value("maxkey", ctx.key)
            return False

        job = TestJob(
            fn,
            loaders=[EnableKeysLoader([3, 11, 7])],
            aggregators={"maxkey": MaxAggregator()},
        )
        result = run_job(fast_store, job)
        assert result.aggregates == {"maxkey": 11}

    def test_loader_contributions_visible_step_zero(self, fast_store):
        observed = []

        def fn(ctx):
            observed.append(ctx.get_aggregate_value("seed"))
            return False

        job = TestJob(
            fn,
            loaders=[
                EnableKeysLoader([0]),
                FunctionLoader(lambda ctx: ctx.aggregate_value("seed", 10)),
            ],
            aggregators={"seed": SumAggregator()},
        )
        run_job(fast_store, job)
        assert observed == [10]

    def test_unknown_aggregator_raises(self, fast_store):
        def fn(ctx):
            ctx.aggregate_value("ghost", 1)
            return False

        with pytest.raises(ComputeError):
            run_job(fast_store, TestJob(fn, loaders=[EnableKeysLoader([0])]))

    def test_many_aggregators_auxiliary_table_path(self, fast_store):
        """With more aggregators than the threshold the engine goes
        through the auxiliary table (paper §IV-A)."""
        names = [f"agg{i}" for i in range(12)]

        def fn(ctx):
            for i, name in enumerate(names):
                ctx.aggregate_value(name, i)
            return False

        job = TestJob(
            fn,
            loaders=[EnableKeysLoader([0, 1])],
            aggregators={name: SumAggregator() for name in names},
        )
        result = run_job(
            fast_store, job, aggregator_table_threshold=4
        )
        assert result.aggregates == {f"agg{i}": 2 * i for i in range(12)}

    def test_collect_aggregator_in_job(self, fast_store):
        def fn(ctx):
            ctx.aggregate_value("keys", ctx.key)
            return False

        job = TestJob(
            fn,
            loaders=[EnableKeysLoader([4, 2, 9])],
            aggregators={"keys": CollectAggregator()},
        )
        result = run_job(fast_store, job)
        assert sorted(result.aggregates["keys"]) == [2, 4, 9]


class TestBroadcast:
    def test_broadcast_data_readable_everywhere(self, fast_store):
        table = fast_store.create_table(TableSpec(name="bcast", ubiquitous=True))
        table.put("factor", 3)
        seen = []

        def fn(ctx):
            seen.append(ctx.get_broadcast_datum("factor"))
            return False

        job = TestJob(fn, loaders=[EnableKeysLoader([0, 1])], broadcast="bcast")
        run_job(fast_store, job)
        assert seen == [3, 3]

    def test_missing_broadcast_key_is_none(self, fast_store):
        table = fast_store.create_table(TableSpec(name="bcast", ubiquitous=True))
        table.put("x", 1)
        seen = []

        def fn(ctx):
            seen.append(ctx.get_broadcast_datum("ghost"))
            return False

        run_job(
            fast_store,
            TestJob(fn, loaders=[EnableKeysLoader([0])], broadcast="bcast"),
        )
        assert seen == [None]


class TestOutputs:
    def test_direct_job_output(self, fast_store):
        exporter = CollectingExporter()

        def fn(ctx):
            ctx.direct_job_output(f"out-{ctx.key}", ctx.key * 10)
            return False

        job = TestJob(fn, loaders=[EnableKeysLoader([1, 2])], direct_exporter=exporter)
        run_job(fast_store, job)
        assert exporter.pairs == {"out-1": 10, "out-2": 20}
        assert exporter.began and exporter.ended

    def test_state_exporters_fire_at_end(self, fast_store):
        exporter = CollectingExporter()

        def fn(ctx):
            ctx.write_state(0, ctx.key + 1)
            return False

        job = TestJob(
            fn,
            loaders=[EnableKeysLoader([0, 1])],
            state_exporters={"state": exporter},
        )
        run_job(fast_store, job)
        assert exporter.pairs == {0: 1, 1: 2}
        assert exporter.began and exporter.ended

    def test_exporter_for_unknown_table_rejected(self, fast_store):
        job = TestJob(
            lambda ctx: False,
            state_exporters={"ghost": CollectingExporter()},
        )
        with pytest.raises(JobSpecError):
            run_job(fast_store, job)

    def test_on_complete_callback(self, fast_store):
        holder = {}

        class CallbackJob(TestJob):
            def on_complete(self, result):
                holder["result"] = result

        job = CallbackJob(lambda ctx: False, loaders=[EnableKeysLoader([0])])
        result = run_job(fast_store, job)
        assert holder["result"] is result


class TestControl:
    def test_aborter_stops_early(self, fast_store):
        def fn(ctx):
            ctx.aggregate_value("count", 1)
            ctx.output_message(ctx.key, "forever")
            return False

        job = TestJob(
            fn,
            loaders=[EnableKeysLoader([0])],
            aggregators={"count": SumAggregator()},
            aborter=lambda step, aggs: step >= 3,
        )
        result = run_job(fast_store, job)
        assert result.aborted
        assert result.steps == 4

    def test_max_steps(self, fast_store):
        def fn(ctx):
            ctx.output_message(ctx.key, "forever")
            return False

        job = TestJob(fn, loaders=[EnableKeysLoader([0])])
        result = run_job(fast_store, job, max_steps=5)
        assert result.steps == 5
        assert not result.aborted

    def test_one_msg_violation_detected(self, fast_store):
        def fn(ctx):
            if ctx.step_num == 0:
                ctx.output_message(50, "a")
                ctx.output_message(50, "b")
            return False

        job = TestJob(
            fn,
            loaders=[EnableKeysLoader([0])],
            properties=JobProperties(one_msg=True, needs_order=True),
        )
        with pytest.raises(PropertyViolationError):
            run_job(fast_store, job, synchronize=True)

    def test_no_continue_violation_detected(self, fast_store):
        job = TestJob(
            lambda ctx: True,
            loaders=[EnableKeysLoader([0])],
            properties=JobProperties(no_continue=True, needs_order=True),
        )
        with pytest.raises(PropertyViolationError):
            run_job(fast_store, job, synchronize=True)

    def test_needs_order_sorts_within_part(self, local_store):
        """With needs-order, collocated invocations are ordered by key."""
        order = []

        def fn(ctx):
            order.append(ctx.key)
            return False

        job = TestJob(
            fn,
            loaders=[EnableKeysLoader([9, 1, 5, 3, 7])],
            properties=JobProperties(needs_order=True),
        )
        run_job(local_store, job)
        # local store has 4 parts; keys within each part must be ascending
        per_part = {}
        table = local_store.get_table("state")
        for key in order:
            per_part.setdefault(table.part_of(key), []).append(key)
        for keys in per_part.values():
            assert keys == sorted(keys)

    def test_compute_errors_carry_context(self, fast_store):
        def fn(ctx):
            raise RuntimeError("inner boom")

        with pytest.raises(ComputeError) as info:
            run_job(fast_store, TestJob(fn, loaders=[EnableKeysLoader([7])]))
        assert info.value.key == 7
        assert info.value.step == 0
        assert isinstance(info.value.cause, RuntimeError)

    def test_duplicate_state_tables_rejected(self, fast_store):
        job = TestJob(lambda ctx: False, state_tables=["t", "t"])
        with pytest.raises(JobSpecError):
            run_job(fast_store, job)

    def test_mismatched_part_counts_rejected(self, fast_store):
        fast_store.create_table(TableSpec(name="a", n_parts=2))
        fast_store.create_table(TableSpec(name="b", n_parts=3))
        job = TestJob(lambda ctx: False, state_tables=["a", "b"])
        with pytest.raises(JobSpecError):
            run_job(fast_store, job)

    def test_reference_table_sets_partitioning(self, fast_store):
        fast_store.create_table(TableSpec(name="ref", n_parts=7))
        job = TestJob(lambda ctx: False, state_tables=["fresh"], reference="ref")
        engine = SyncEngine(fast_store, job)
        assert engine.n_parts == 7
        assert fast_store.get_table("fresh").n_parts == 7

    def test_private_tables_cleaned_up(self, fast_store):
        before = set(fast_store.list_tables())
        run_job(fast_store, TestJob(lambda ctx: False, loaders=[EnableKeysLoader([0])]))
        after = set(fast_store.list_tables())
        assert after - before == {"state"}
