"""Fault tolerance: the §IV-A recovery outline under injected failures."""

from __future__ import annotations

import pytest

from repro.errors import RecoveryError
from repro.ebsp.aggregators import SumAggregator
from repro.ebsp.exporters import CollectingExporter
from repro.ebsp.loaders import DictStateLoader, EnableKeysLoader
from repro.ebsp.recovery import FailureInjector, ProgressTable, SimulatedFailure
from repro.ebsp.runner import run_job
from repro.kvstore.local import LocalKVStore

from tests.ebsp.jobs import TestJob


@pytest.fixture
def store():
    instance = LocalKVStore(default_n_parts=4)
    yield instance
    instance.close()


def counting_chain_job(length: int, exporter=None, aggregators=None):
    """Key 0 forwards a counter to itself for *length* steps, writing
    state and emitting output each step — a job where a lost or doubled
    part-step is visible in several places at once."""

    def fn(ctx):
        for value in ctx.input_messages():
            ctx.write_state(0, value)
            if exporter is not None:
                ctx.direct_job_output((ctx.step_num, ctx.key), value)
            if aggregators:
                ctx.aggregate_value("sum", value)
            if value < length:
                ctx.output_message(ctx.key, value + 1)
        return False

    from repro.ebsp.loaders import MessageListLoader

    return TestJob(
        fn,
        loaders=[MessageListLoader([(0, 1)])],
        direct_exporter=exporter,
        aggregators=aggregators or {},
    )


class TestFailureInjector:
    def test_fires_scheduled_times_then_stops(self):
        injector = FailureInjector()
        injector.schedule(part=1, step=2, times=2)
        with pytest.raises(SimulatedFailure):
            injector.check(1, 2)
        with pytest.raises(SimulatedFailure):
            injector.check(1, 2)
        injector.check(1, 2)  # exhausted: no raise
        assert injector.failures_injected == 2

    def test_other_part_steps_unaffected(self):
        injector = FailureInjector()
        injector.schedule(part=0, step=0)
        injector.check(1, 0)
        injector.check(0, 1)

    def test_bad_times(self):
        with pytest.raises(ValueError):
            FailureInjector().schedule(0, 0, times=0)


class TestProgressTable:
    def test_tracks_completion(self, store):
        progress = ProgressTable(store, "progress", 3)
        assert progress.completed_step(0) == -1
        progress.mark_completed(0, 0)
        progress.mark_completed(0, 1)
        assert progress.completed_step(0) == 1
        assert progress.min_completed_step() == -1  # parts 1,2 untouched

    def test_out_of_order_commit_rejected(self, store):
        """Commits must happen 'in the right order' (paper §IV-A)."""
        progress = ProgressTable(store, "progress", 2)
        progress.mark_completed(0, 3)
        with pytest.raises(RecoveryError):
            progress.mark_completed(0, 3)
        with pytest.raises(RecoveryError):
            progress.mark_completed(0, 1)


class TestRecovery:
    def test_result_identical_to_clean_run(self, store):
        clean = run_job(LocalKVStore(4), counting_chain_job(10), fault_tolerance=True)

        injector = FailureInjector()
        part = store.default_n_parts and 0  # key 0 lives in part 0
        injector.schedule(part=0, step=3, times=2)
        injector.schedule(part=0, step=7, times=1)
        result = run_job(
            store,
            counting_chain_job(10),
            fault_tolerance=True,
            failure_injector=injector,
        )
        assert injector.failures_injected == 3
        assert result.steps == clean.steps
        assert result.counters["part_step_retries"] == 3
        assert store.get_table("state").get(0) == 10

    def test_no_duplicate_direct_output(self, store):
        """A failed part-step must not leak its direct output."""
        exporter = CollectingExporter()
        injector = FailureInjector()
        injector.schedule(part=0, step=2, times=1)
        run_job(
            store,
            counting_chain_job(6, exporter=exporter),
            fault_tolerance=True,
            failure_injector=injector,
        )
        # one output pair per step, none doubled
        assert exporter.pairs == {(s, 0): s + 1 for s in range(6)}

    def test_aggregates_not_double_counted(self, store):
        injector = FailureInjector()
        injector.schedule(part=0, step=1, times=3)
        result = run_job(
            store,
            counting_chain_job(5, aggregators={"sum": SumAggregator()}),
            fault_tolerance=True,
            failure_injector=injector,
        )
        # a clean run aggregates 1+2+3+4+5 over the whole job; the final
        # step's aggregation is what the result reports... each step sums
        # its own value, so the final value is the last step's message
        assert result.aggregates == {"sum": 5}

    def test_messages_not_duplicated_after_retry(self, store):
        received_counts = {}

        def fn(ctx):
            messages = list(ctx.input_messages())
            received_counts.setdefault(ctx.step_num, 0)
            received_counts[ctx.step_num] += len(messages)
            for value in messages:
                if value < 4:
                    ctx.output_message(ctx.key, value + 1)
            return False

        from repro.ebsp.loaders import MessageListLoader

        injector = FailureInjector()
        injector.schedule(part=0, step=2, times=2)
        job = TestJob(fn, loaders=[MessageListLoader([(0, 1)])])
        run_job(store, job, fault_tolerance=True, failure_injector=injector)
        assert all(count == 1 for count in received_counts.values())

    def test_too_many_failures_gives_up(self, store):
        injector = FailureInjector()
        injector.schedule(part=0, step=0, times=100)
        with pytest.raises(SimulatedFailure):
            run_job(
                store,
                counting_chain_job(3),
                fault_tolerance=True,
                failure_injector=injector,
                max_retries=4,
            )

    def test_state_writes_rolled_back(self, store):
        """A crash mid-step leaves earlier state untouched (deleting the
        writes done by the failed shard)."""
        attempts = {"n": 0}

        def fn(ctx):
            if ctx.step_num == 0:
                # first attempt writes state then crashes before commit
                ctx.write_state(0, f"attempt-{attempts['n']}")
                attempts["n"] += 1
                if attempts["n"] == 1:
                    raise SimulatedFailure(0, 0)
            return False

        job = TestJob(fn, loaders=[EnableKeysLoader([0])])
        run_job(store, job, fault_tolerance=True)
        assert attempts["n"] == 2
        assert store.get_table("state").get(0) == "attempt-1"

    def test_deterministic_flag_reported_in_plan(self, store):
        from repro.ebsp.runner import plan_for
        from repro.ebsp.properties import JobProperties

        job = TestJob(lambda ctx: False, properties=JobProperties(deterministic=True))
        assert plan_for(job).optimized_recovery
