"""Scheduler under concurrent submission, plus graceful close and the
start/done callbacks — across all three worker runtimes."""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import JobError
from repro.ebsp.loaders import MessageListLoader
from repro.ebsp.scheduler import JobScheduler, JobState
from repro.kvstore.partitioned import PartitionedKVStore

from tests.ebsp.jobs import TestJob

RUNTIMES = ["inline", "threaded", "process"]


@pytest.fixture
def store():
    instance = PartitionedKVStore(n_partitions=4)
    yield instance
    instance.close()


def chain_job(table: str, length: int):
    def fn(ctx):
        for value in ctx.input_messages():
            ctx.write_state(0, value)
            if value < length:
                ctx.output_message(ctx.key, value + 1)
        return False

    return TestJob(
        fn, state_tables=[table], loaders=[MessageListLoader([(0, 1)])]
    )


@pytest.mark.parametrize("runtime", RUNTIMES)
class TestConcurrentSubmission:
    def test_many_jobs_from_many_threads(self, store, runtime):
        """N jobs race in from M submitter threads; every completion is
        observed, every counter is right, teardown is clean."""
        n_threads, jobs_per_thread, length = 4, 3, 4
        scheduler = JobScheduler(store, max_concurrent=3, runtime=runtime)
        handles, errors = [], []
        handles_lock = threading.Lock()
        done_ids = set()
        done_lock = threading.Lock()

        def on_done(handle):
            with done_lock:
                done_ids.add(handle.job_id)

        def submitter(thread_idx):
            try:
                for i in range(jobs_per_thread):
                    handle = scheduler.submit(
                        chain_job(f"t{thread_idx}_{i}", length), on_done=on_done
                    )
                    with handles_lock:
                        handles.append(handle)
            except BaseException as exc:  # surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=submitter, args=(t,)) for t in range(n_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors

        assert scheduler.wait_all(timeout=120)
        assert len(handles) == n_threads * jobs_per_thread
        for handle in handles:
            assert handle.state is JobState.SUCCEEDED, handle.error
            # stable JobResult counters: the chain runs exactly `length`
            # steps and each step touches one part
            assert handle.result.steps == length
            assert handle.result.part_steps_run == length
        # no lost completions
        assert done_ids == {handle.job_id for handle in handles}
        # every state table holds the final chain value
        for t in range(n_threads):
            for i in range(jobs_per_thread):
                assert store.get_table(f"t{t}_{i}").get(0) == length
        assert scheduler.close(timeout=30) is True

    def test_results_identical_across_concurrency(self, store, runtime):
        """The same job run solo and run amid contention produces the
        same counters (scheduling never changes semantics)."""
        solo = JobScheduler(store, max_concurrent=1, runtime=runtime)
        baseline = solo.submit(chain_job("solo", 5))
        assert baseline.wait(60)
        solo.close()

        crowd = JobScheduler(store, max_concurrent=3, runtime=runtime)
        handles = [crowd.submit(chain_job(f"crowd_{i}", 5)) for i in range(6)]
        assert crowd.wait_all(timeout=120)
        crowd.close()
        for handle in handles:
            assert handle.state is JobState.SUCCEEDED
            assert handle.result.steps == baseline.result.steps
            assert handle.result.part_steps_run == baseline.result.part_steps_run


class TestGracefulClose:
    def test_close_cancels_queued_and_waits_running(self, store):
        gate = threading.Event()

        def slow(ctx):
            gate.wait(15)
            ctx.write_state(0, "ran")
            return False

        scheduler = JobScheduler(store, max_concurrent=1)
        running = scheduler.submit(
            TestJob(slow, state_tables=["gc1"], loaders=[MessageListLoader([(0, 1)])])
        )
        queued = scheduler.submit(chain_job("gc2", 3))
        done_states = []
        closer = threading.Thread(
            target=lambda: done_states.append(scheduler.close(timeout=30))
        )
        closer.start()
        # close() must cancel the queued job promptly, not wait on it
        assert queued.wait(5)
        assert queued.state is JobState.CANCELLED
        gate.set()
        closer.join(30)
        assert done_states == [True]
        assert running.state is JobState.SUCCEEDED

    def test_close_deadline_returns_false_without_killing(self, store):
        gate = threading.Event()

        def slow(ctx):
            gate.wait(15)
            ctx.write_state(0, "survived")
            return False

        scheduler = JobScheduler(store)
        handle = scheduler.submit(
            TestJob(slow, state_tables=["gc3"], loaders=[MessageListLoader([(0, 1)])])
        )
        start = time.monotonic()
        assert scheduler.close(timeout=0.2) is False
        assert time.monotonic() - start < 5
        # the job was not killed mid-flight; it completes after release
        gate.set()
        assert handle.wait(30)
        assert handle.state is JobState.SUCCEEDED
        assert store.get_table("gc3").get(0) == "survived"

    def test_close_is_idempotent_and_blocks_submission(self, store):
        scheduler = JobScheduler(store)
        assert scheduler.close() is True
        assert scheduler.close() is True
        with pytest.raises(JobError, match="shut down"):
            scheduler.submit(chain_job("nope", 2))

    def test_shutdown_alias(self, store):
        scheduler = JobScheduler(store)
        handle = scheduler.submit(chain_job("alias", 3))
        scheduler.shutdown(wait=True)
        assert handle.state is JobState.SUCCEEDED


class TestCallbacks:
    def test_on_start_and_on_done_fire_in_order(self, store):
        order = []
        with JobScheduler(store) as scheduler:
            handle = scheduler.submit(
                chain_job("cb1", 3),
                on_start=lambda h: order.append(("start", h.state)),
                on_done=lambda h: order.append(("done", h.state)),
            )
            assert handle.wait(30)
        assert [kind for kind, _ in order] == ["start", "done"]
        assert order[1][1] is JobState.SUCCEEDED

    def test_on_done_fires_for_cancelled_jobs(self, store):
        gate = threading.Event()

        def slow(ctx):
            gate.wait(10)
            return False

        seen = []
        with JobScheduler(store, max_concurrent=1) as scheduler:
            scheduler.submit(
                TestJob(slow, state_tables=["cb2"], loaders=[MessageListLoader([(0, 1)])])
            )
            queued = scheduler.submit(chain_job("cb3", 2), on_done=lambda h: seen.append(h.state))
            assert scheduler.cancel(queued.job_id)
            gate.set()
        assert seen == [JobState.CANCELLED]

    def test_callback_exceptions_are_swallowed(self, store):
        def explode(handle):
            raise RuntimeError("listener bug")

        with JobScheduler(store) as scheduler:
            handle = scheduler.submit(
                chain_job("cb4", 3), on_start=explode, on_done=explode
            )
            assert handle.wait(30)
            assert handle.state is JobState.SUCCEEDED
