"""Small configurable jobs shared by the engine tests."""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.ebsp.aggregators import Aggregator
from repro.ebsp.exporters import Exporter
from repro.ebsp.job import Compute, ComputeContext, Job
from repro.ebsp.loaders import Loader
from repro.ebsp.properties import JobProperties


class FnCompute(Compute):
    """Compute built from a function; optional combiner/state-merger."""

    def __init__(
        self,
        fn: Callable[[ComputeContext], bool],
        combiner: Optional[Callable[[Any, Any], Any]] = None,
        state_merger: Optional[Callable[[Any, Any], Any]] = None,
    ):
        self._fn = fn
        self._combiner = combiner
        self._state_merger = state_merger

    def compute(self, ctx: ComputeContext) -> bool:
        return bool(self._fn(ctx))

    def combine_messages(self, ctx: Any, key: Any, m1: Any, m2: Any) -> Any:
        if self._combiner is None:
            return None
        return self._combiner(m1, m2)

    def combine_states(self, ctx: Any, key: Any, s1: Any, s2: Any) -> Any:
        if self._state_merger is None:
            return super().combine_states(ctx, key, s1, s2)
        return self._state_merger(s1, s2)


def make_compute_class(fn, combiner=None):
    """Build a Compute *subclass with a combiner override* only when one
    is requested — the engine detects combiners by override, so tests
    must not always override."""
    if combiner is None:

        class _NoCombiner(Compute):
            def compute(self, ctx):
                return bool(fn(ctx))

        return _NoCombiner()
    return FnCompute(fn, combiner=combiner)


class TestJob(Job):
    """Fully parameterized job for engine tests."""

    __test__ = False  # not a pytest test class

    def __init__(
        self,
        fn: Callable[[ComputeContext], bool],
        state_tables: Optional[List[str]] = None,
        loaders: Optional[List[Loader]] = None,
        aggregators: Optional[Dict[str, Aggregator]] = None,
        combiner: Optional[Callable[[Any, Any], Any]] = None,
        state_merger: Optional[Callable[[Any, Any], Any]] = None,
        properties: Optional[JobProperties] = None,
        broadcast: Optional[str] = None,
        direct_exporter: Optional[Exporter] = None,
        state_exporters: Optional[Dict[str, Exporter]] = None,
        aborter: Optional[Callable[[int, Dict[str, Any]], bool]] = None,
        reference: Optional[str] = None,
    ):
        self._fn = fn
        self._state_tables = state_tables if state_tables is not None else ["state"]
        self._loaders = loaders or []
        self._aggregators = aggregators or {}
        self._combiner = combiner
        self._state_merger = state_merger
        self._properties = properties or JobProperties()
        self._broadcast = broadcast
        self._direct_exporter = direct_exporter
        self._state_exporters = state_exporters or {}
        self._aborter_fn = aborter
        self._reference = reference

    def state_table_names(self) -> List[str]:
        return list(self._state_tables)

    def get_compute(self) -> Compute:
        if self._combiner is None and self._state_merger is None:
            return make_compute_class(self._fn)
        return FnCompute(self._fn, self._combiner, self._state_merger)

    def aggregators(self) -> Dict[str, Aggregator]:
        return dict(self._aggregators)

    def loaders(self) -> List[Loader]:
        return list(self._loaders)

    def properties(self) -> JobProperties:
        return self._properties

    def broadcast_table(self) -> Optional[str]:
        return self._broadcast

    def reference_table(self) -> Optional[str]:
        return self._reference

    def direct_output_exporter(self) -> Optional[Exporter]:
        return self._direct_exporter

    def state_exporters(self) -> Dict[str, Exporter]:
        return dict(self._state_exporters)

    @property
    def has_aborter(self) -> bool:
        return self._aborter_fn is not None

    def aborter(self, step_num: int, aggregates: Dict[str, Any]) -> bool:
        if self._aborter_fn is None:
            return False
        return self._aborter_fn(step_num, aggregates)
