"""The §II-A property → optimization implication rules."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro.ebsp.properties import ExecutionPlan, JobProperties


def derive(has_aggs=False, has_aborter=False, **props):
    return ExecutionPlan.derive(JobProperties(**props), has_aggs, has_aborter)


class TestImplications:
    def test_no_sort_iff_not_needs_order(self):
        assert derive().no_sort
        assert not derive(needs_order=True).no_sort

    def test_no_collect_needs_both(self):
        assert derive(one_msg=True, no_continue=True).no_collect
        assert not derive(one_msg=True).no_collect
        assert not derive(no_continue=True).no_collect

    def test_run_anywhere(self):
        assert derive(one_msg=True, no_continue=True, rare_state=True).run_anywhere
        assert not derive(one_msg=True, no_continue=True).run_anywhere
        assert not derive(rare_state=True).run_anywhere

    def test_no_sync_via_no_collect_and_no_ss_order(self):
        assert derive(one_msg=True, no_continue=True, no_ss_order=True).no_sync

    def test_no_sync_via_incremental(self):
        assert derive(incremental=True).no_sync

    def test_aggregators_block_no_sync(self):
        assert not derive(has_aggs=True, incremental=True).no_sync

    def test_aborter_blocks_no_sync(self):
        assert not derive(has_aborter=True, incremental=True).no_sync

    def test_no_ss_order_alone_insufficient(self):
        assert not derive(no_ss_order=True).no_sync

    def test_optimized_recovery_iff_deterministic(self):
        assert derive(deterministic=True).optimized_recovery
        assert not derive().optimized_recovery

    def test_detected_flags_carried(self):
        plan = derive(has_aggs=True, has_aborter=True)
        assert not plan.no_agg
        assert not plan.no_client_sync


@given(
    needs_order=st.booleans(),
    no_continue=st.booleans(),
    one_msg=st.booleans(),
    rare_state=st.booleans(),
    no_ss_order=st.booleans(),
    incremental=st.booleans(),
    deterministic=st.booleans(),
    has_aggs=st.booleans(),
    has_aborter=st.booleans(),
)
def test_implication_rules_hold_for_all_combinations(
    needs_order,
    no_continue,
    one_msg,
    rare_state,
    no_ss_order,
    incremental,
    deterministic,
    has_aggs,
    has_aborter,
):
    """Exhaustive check of the paper's formulas over the whole space."""
    props = JobProperties(
        needs_order=needs_order,
        no_continue=no_continue,
        one_msg=one_msg,
        rare_state=rare_state,
        no_ss_order=no_ss_order,
        incremental=incremental,
        deterministic=deterministic,
    )
    plan = ExecutionPlan.derive(props, has_aggs, has_aborter)
    assert plan.no_sort == (not needs_order)
    assert plan.no_collect == (one_msg and no_continue)
    assert plan.run_anywhere == (plan.no_collect and rare_state)
    assert plan.no_sync == (
        ((plan.no_collect and no_ss_order) or incremental)
        and not has_aggs
        and not has_aborter
    )
    assert plan.optimized_recovery == deterministic
    # run-anywhere requires no-collect; no-collect requires one-msg
    if plan.run_anywhere:
        assert plan.no_collect
    if plan.no_collect:
        assert one_msg and no_continue
