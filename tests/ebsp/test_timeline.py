"""Per-step execution timeline in JobResult."""

from __future__ import annotations

from repro.ebsp.loaders import EnableKeysLoader, MessageListLoader
from repro.ebsp.results import StepMetrics
from repro.ebsp.runner import run_job

from tests.ebsp.jobs import TestJob


def test_timeline_one_entry_per_step(local_store):
    def fn(ctx):
        for value in ctx.input_messages():
            if value < 4:
                ctx.output_message(ctx.key, value + 1)
        return False

    job = TestJob(fn, loaders=[MessageListLoader([(0, 1)])])
    result = run_job(local_store, job)
    assert len(result.timeline) == result.steps
    assert [m.step for m in result.timeline] == list(range(result.steps))
    assert all(isinstance(m, StepMetrics) for m in result.timeline)
    assert all(m.duration_seconds >= 0 for m in result.timeline)


def test_timeline_tracks_invocations_and_fanout(local_store):
    def fn(ctx):
        if ctx.step_num == 0:
            for target in range(10):
                ctx.output_message(100 + target, 1)
        return False

    job = TestJob(fn, loaders=[EnableKeysLoader([0])])
    result = run_job(local_store, job)
    assert result.timeline[0].invocations == 1
    assert result.timeline[0].records_out == 10
    assert result.timeline[1].invocations == 10
    assert result.timeline[1].records_out == 0


def test_async_runs_have_empty_timeline(local_store):
    from repro.ebsp.properties import JobProperties

    job = TestJob(
        lambda ctx: False,
        properties=JobProperties(incremental=True, no_continue=True),
        loaders=[MessageListLoader([(0, 1)])],
    )
    result = run_job(local_store, job, synchronize=False)
    assert result.timeline == []  # there are no steps without barriers
