"""Shipped part-step execution on a process runtime (paper §III).

The same SPI on real cores: a picklable job's part-steps run inside
the worker processes that own the parts, and everything the engine
normally accumulates in shared memory — counters, the spill ledger,
aggregates, direct outputs, injected failures, trace spans — ships
back across the barrier and folds in the parent.  Lambda-heavy jobs
must keep working unmodified via the parent-side fallback.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.pagerank import (
    PageRankConfig,
    build_pagerank_table,
    pagerank_direct,
    read_ranks,
)
from repro.ebsp.loaders import MessageListLoader
from repro.ebsp.recovery import FailureInjector
from repro.ebsp.runner import run_job
from repro.kvstore.partitioned import PartitionedKVStore
from repro.runtime.shipping import ShippingError

from tests.ebsp.jobs import TestJob

N_VERTICES = 120


def _adjacency():
    rng = np.random.default_rng(11)
    return {
        v: rng.integers(0, N_VERTICES, size=int(rng.integers(0, 6)))
        for v in range(N_VERTICES)
    }


def _run_pagerank(runtime, **kwargs):
    with PartitionedKVStore(n_partitions=4, runtime=runtime) as store:
        n = build_pagerank_table(store, "graph", _adjacency(), n_parts=4)
        result = pagerank_direct(
            store, "graph", n, PageRankConfig(iterations=4), **kwargs
        )
        return result, read_ranks(store, "graph")


def test_shipped_run_matches_threaded():
    threaded, t_ranks = _run_pagerank("threaded")
    shipped, s_ranks = _run_pagerank("process")
    assert shipped.steps == threaded.steps
    assert max(abs(t_ranks[k] - s_ranks[k]) for k in t_ranks) < 1e-12
    for name in (
        "compute_invocations",
        "messages_sent",
        "messages_combined",
        "records_spilled",
        "spills_written",
        "part_steps_run",
        "barriers",
    ):
        assert shipped.counters.get(name) == threaded.counters.get(name), name


def test_explicit_ship_compute_accepted_for_picklable_job():
    result, _ = _run_pagerank("process", ship_compute=True)
    assert result.steps == 5
    assert result.counters["compute_invocations"] > 0


def test_shipped_trace_spans_replay_into_parent_timeline():
    result, _ = _run_pagerank("process", trace=True)
    events = result.trace["traceEvents"]
    names = {event.get("name") for event in events}
    assert {"part-step", "collect", "commit", "superstep"} <= names


def test_shipped_fault_tolerance_and_failure_injection():
    injector = FailureInjector()
    injector.schedule(1, 2, times=2)
    result, ranks = _run_pagerank(
        "process", fault_tolerance=True, failure_injector=injector
    )
    assert injector.failures_injected == 2
    assert result.counters.get("part_step_retries") == 2
    _, reference = _run_pagerank("threaded")
    assert max(abs(reference[k] - ranks[k]) for k in reference) < 1e-12


def test_lambda_job_falls_back_on_process_runtime():
    with PartitionedKVStore(n_partitions=2, runtime="process") as store:

        def fn(ctx):
            ctx.write_state(0, (ctx.read_state(0) or 0) + 1)
            return ctx.step_num < 2

        job = TestJob(
            fn, loaders=[MessageListLoader([(i, i) for i in range(6)])]
        )
        result = run_job(store, job, synchronize=True)
        assert result.steps == 3
        assert store.get_table("state").get(0) == 3


def test_explicit_ship_compute_rejects_unpicklable_job():
    with PartitionedKVStore(n_partitions=2, runtime="process") as store:
        job = TestJob(
            lambda ctx: False,
            loaders=[MessageListLoader([(0, 0)])],
        )
        with pytest.raises(ShippingError, match="cannot be shipped"):
            run_job(store, job, synchronize=True, ship_compute=True)


def test_explicit_ship_compute_rejects_thread_runtime():
    with PartitionedKVStore(n_partitions=2, runtime="threaded") as store:
        job = TestJob(
            lambda ctx: False,
            loaders=[MessageListLoader([(0, 0)])],
        )
        with pytest.raises(ShippingError, match="process runtime"):
            run_job(store, job, synchronize=True, ship_compute=True)
