"""The concurrent-job scheduler (§VII future work)."""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import JobError
from repro.ebsp.loaders import MessageListLoader
from repro.ebsp.scheduler import JobScheduler, JobState
from repro.kvstore.partitioned import PartitionedKVStore

from tests.ebsp.jobs import TestJob


@pytest.fixture
def store():
    instance = PartitionedKVStore(n_partitions=4)
    yield instance
    instance.close()


def chain_job(table: str, length: int, extra_tables=(), on_step=None):
    def fn(ctx):
        for value in ctx.input_messages():
            if on_step is not None:
                on_step(ctx.step_num)
            ctx.write_state(0, value)
            if value < length:
                ctx.output_message(ctx.key, value + 1)
        return False

    return TestJob(
        fn,
        state_tables=[table, *extra_tables],
        loaders=[MessageListLoader([(0, 1)])],
    )


class TestLifecycle:
    def test_submit_and_wait(self, store):
        with JobScheduler(store) as scheduler:
            handle = scheduler.submit(chain_job("a", 5))
            assert handle.wait(timeout=30)
            assert handle.state is JobState.SUCCEEDED
            assert handle.result.steps == 5
        assert store.get_table("a").get(0) == 5

    def test_failure_recorded_not_raised(self, store):
        def boom(ctx):
            raise RuntimeError("bad job")

        with JobScheduler(store) as scheduler:
            handle = scheduler.submit(
                TestJob(boom, state_tables=["x"], loaders=[MessageListLoader([(0, 1)])])
            )
            assert handle.wait(timeout=30)
            assert handle.state is JobState.FAILED
            assert handle.error is not None
            assert handle.result is None

    def test_cancel_queued(self, store):
        gate = threading.Event()

        def slow(ctx):
            gate.wait(10)
            return False

        with JobScheduler(store, max_concurrent=1) as scheduler:
            running = scheduler.submit(
                TestJob(slow, state_tables=["s1"], loaders=[MessageListLoader([(0, 1)])])
            )
            queued = scheduler.submit(chain_job("s2", 3))
            assert scheduler.cancel(queued.job_id)
            assert queued.state is JobState.CANCELLED
            gate.set()
            assert running.wait(timeout=30)

    def test_cancel_running_refused(self, store):
        gate = threading.Event()

        def slow(ctx):
            gate.wait(10)
            return False

        with JobScheduler(store) as scheduler:
            handle = scheduler.submit(
                TestJob(slow, state_tables=["s"], loaders=[MessageListLoader([(0, 1)])])
            )
            time.sleep(0.1)
            assert not scheduler.cancel(handle.job_id)
            gate.set()
            assert handle.wait(timeout=30)

    def test_submit_after_shutdown(self, store):
        scheduler = JobScheduler(store)
        scheduler.shutdown()
        with pytest.raises(JobError):
            scheduler.submit(chain_job("a", 2))

    def test_unknown_handle(self, store):
        with JobScheduler(store) as scheduler:
            with pytest.raises(JobError):
                scheduler.handle("nope")

    def test_engine_kwargs_forwarded(self, store):
        with JobScheduler(store) as scheduler:
            handle = scheduler.submit(chain_job("a", 100), max_steps=3)
            assert handle.wait(timeout=30)
            assert handle.result.steps == 3


class TestConflictRules:
    def test_disjoint_jobs_run_in_parallel(self, store):
        both_running = threading.Event()
        active = {"count": 0}
        lock = threading.Lock()

        def tracked(table, key):
            # distinct keys → distinct parts → distinct partition threads,
            # so the two jobs' computes can genuinely overlap
            def fn(ctx):
                with lock:
                    active["count"] += 1
                    if active["count"] == 2:
                        both_running.set()
                both_running.wait(5)  # hold until the other arrives
                with lock:
                    active["count"] -= 1
                return False

            return TestJob(
                fn, state_tables=[table], loaders=[MessageListLoader([(key, 1)])]
            )

        with JobScheduler(store, max_concurrent=2) as scheduler:
            h1 = scheduler.submit(tracked("left", 0))
            h2 = scheduler.submit(tracked("right", 1))
            assert scheduler.wait_all(timeout=30)
            assert both_running.is_set(), "disjoint jobs should have overlapped"
            assert h1.state is h2.state is JobState.SUCCEEDED

    def test_write_conflicts_serialize(self, store):
        order = []
        lock = threading.Lock()

        def logged(tag):
            def fn(ctx):
                with lock:
                    order.append((tag, "start"))
                time.sleep(0.05)
                with lock:
                    order.append((tag, "end"))
                return False

            return TestJob(
                fn, state_tables=["shared"], loaders=[MessageListLoader([(0, 1)])]
            )

        with JobScheduler(store, max_concurrent=2) as scheduler:
            scheduler.submit(logged("one"))
            scheduler.submit(logged("two"))
            assert scheduler.wait_all(timeout=30)
        # no interleaving: each job's start/end pair is contiguous
        tags = [tag for tag, _ in order]
        assert tags in (["one", "one", "two", "two"], ["two", "two", "one", "one"])

    def test_read_sharing_allowed(self, store):
        from repro.kvstore.api import TableSpec

        store.create_table(TableSpec(name="reference", n_parts=4))
        store.get_table("reference").put(0, "shared-data")
        seen = []
        both = threading.Event()
        lock = threading.Lock()

        def reader(out_table):
            def fn(ctx):
                with lock:
                    seen.append(out_table)
                    if len(seen) == 2:
                        both.set()
                both.wait(5)
                ctx.write_state(0, ctx.read_state(1))
                return False

            return TestJob(
                fn,
                state_tables=[out_table, "reference"],
                loaders=[MessageListLoader([(0, 1)])],
            )

        with JobScheduler(store, max_concurrent=2) as scheduler:
            h1 = scheduler.submit(reader("out1"), read_only=["reference"])
            h2 = scheduler.submit(reader("out2"), read_only=["reference"])
            assert scheduler.wait_all(timeout=30)
        assert both.is_set(), "read-only sharing should have run in parallel"
        assert store.get_table("out1").get(0) == "shared-data"
        assert h1.reads == frozenset({"reference"})

    def test_reader_blocks_writer(self, store):
        """A job writing a table another job is reading must wait."""
        from repro.kvstore.api import TableSpec

        store.create_table(TableSpec(name="data", n_parts=4))
        order = []
        lock = threading.Lock()

        def make(tag, tables, read_only=None, delay=0.0):
            def fn(ctx):
                with lock:
                    order.append((tag, "start"))
                time.sleep(delay)
                with lock:
                    order.append((tag, "end"))
                return False

            return TestJob(
                fn, state_tables=tables, loaders=[MessageListLoader([(0, 1)])]
            ), read_only

        with JobScheduler(store, max_concurrent=2) as scheduler:
            reader_job, ro = make("reader", ["out", "data"], delay=0.1)
            scheduler.submit(reader_job, read_only=["data"])
            time.sleep(0.02)
            writer_job, _ = make("writer", ["data"])
            scheduler.submit(writer_job)
            assert scheduler.wait_all(timeout=30)
        assert order.index(("reader", "end")) < order.index(("writer", "start"))

    def test_bad_concurrency(self, store):
        with pytest.raises(ValueError):
            JobScheduler(store, max_concurrent=0)
