"""Scheduler corners: timeouts, shutdown modes, many queued jobs."""

from __future__ import annotations

import threading
import time

import pytest

from repro.ebsp.loaders import MessageListLoader
from repro.ebsp.scheduler import JobScheduler, JobState
from repro.kvstore.local import LocalKVStore

from tests.ebsp.jobs import TestJob


@pytest.fixture
def store():
    instance = LocalKVStore(default_n_parts=4)
    yield instance
    instance.close()


def quick_job(table: str):
    def fn(ctx):
        ctx.write_state(0, "done")
        return False

    return TestJob(fn, state_tables=[table], loaders=[MessageListLoader([(0, 1)])])


def test_wait_all_timeout_returns_false(store):
    gate = threading.Event()

    def slow(ctx):
        gate.wait(10)
        return False

    with JobScheduler(store) as scheduler:
        scheduler.submit(
            TestJob(slow, state_tables=["s"], loaders=[MessageListLoader([(0, 1)])])
        )
        assert scheduler.wait_all(timeout=0.05) is False
        gate.set()
        assert scheduler.wait_all(timeout=30) is True


def test_shutdown_cancels_queue(store):
    gate = threading.Event()

    def slow(ctx):
        gate.wait(10)
        return False

    scheduler = JobScheduler(store, max_concurrent=1)
    running = scheduler.submit(
        TestJob(slow, state_tables=["s1"], loaders=[MessageListLoader([(0, 1)])])
    )
    queued = scheduler.submit(quick_job("s2"))
    gate.set()
    scheduler.shutdown(wait=True)
    assert queued.state is JobState.CANCELLED
    assert running.state is JobState.SUCCEEDED


def test_many_serialized_jobs_all_run(store):
    """Twenty conflicting jobs on one table: all run, one at a time."""
    counter = {"concurrent": 0, "max_seen": 0}
    lock = threading.Lock()

    def tracked(ctx):
        with lock:
            counter["concurrent"] += 1
            counter["max_seen"] = max(counter["max_seen"], counter["concurrent"])
        time.sleep(0.002)
        with lock:
            counter["concurrent"] -= 1
        return False

    with JobScheduler(store, max_concurrent=4) as scheduler:
        handles = [
            scheduler.submit(
                TestJob(
                    tracked, state_tables=["shared"], loaders=[MessageListLoader([(0, 1)])]
                )
            )
            for _ in range(20)
        ]
        assert scheduler.wait_all(timeout=60)
    assert all(h.state is JobState.SUCCEEDED for h in handles)
    assert counter["max_seen"] == 1  # write conflicts fully serialized


def test_handles_report_durations(store):
    with JobScheduler(store) as scheduler:
        handle = scheduler.submit(quick_job("t"))
        handle.wait(30)
    assert handle.finished_at is not None
    assert handle.finished_at >= handle.submitted_at
    assert handle.done
