"""Real crash tolerance: SIGKILLed workers, deadlines, checkpoint/resume.

``test_engine_recovery.py`` pins the §IV-A recovery outline against
*simulated* failures (an exception standing in for a crash).  This file
pins the real thing: worker processes killed mid-part-step, hangs cut
off by task deadlines, and a driver death survived through superstep
checkpoints.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.apps.pagerank import (
    PageRankConfig,
    build_pagerank_table,
    pagerank_direct,
    read_ranks,
)
from repro.ebsp.checkpoint import CheckpointManager
from repro.ebsp.loaders import MessageListLoader
from repro.ebsp.recovery import ProcessFailureInjector
from repro.ebsp.runner import run_job
from repro.errors import ComputeError, JobSpecError, RecoveryError
from repro.kvstore.local import LocalKVStore
from repro.kvstore.partitioned import PartitionedKVStore
from repro.kvstore.persistent import PersistentKVStore
from repro.runtime import ProcessRuntime, RetryPolicy

from tests.ebsp.jobs import TestJob

N_VERTICES = 120
N_PARTS = 4


def _adjacency():
    rng = np.random.default_rng(11)
    return {
        v: rng.integers(0, N_VERTICES, size=int(rng.integers(0, 6)))
        for v in range(N_VERTICES)
    }


def _pagerank(injector=None, deadline=None):
    runtime = ProcessRuntime(
        N_PARTS, retry_policy=RetryPolicy(task_deadline=deadline, max_respawns=6)
    )
    with PartitionedKVStore(
        n_partitions=N_PARTS, runtime=runtime, crash_tolerance=True
    ) as store:
        n = build_pagerank_table(store, "graph", _adjacency(), n_parts=N_PARTS)
        kwargs = {"fault_tolerance": True}
        if injector is not None:
            kwargs["failure_injector"] = injector
        result = pagerank_direct(
            store, "graph", n, PageRankConfig(iterations=4), **kwargs
        )
        ranks = read_ranks(store, "graph")
    return result, pickle.dumps(sorted(ranks.items()))


class TestRealCrashRecovery:
    def test_sigkills_and_hang_yield_byte_identical_ranks(self, tmp_path):
        """Two real SIGKILLs plus one hang cut off by its deadline leave
        the final ranks byte-identical to a failure-free run."""
        _, clean_blob = _pagerank()

        injector = ProcessFailureInjector(str(tmp_path))
        injector.schedule_kill(part=1, step=1)
        injector.schedule_kill(part=2, step=2)
        injector.schedule_hang(part=3, step=3, seconds=20.0)
        result, chaos_blob = _pagerank(injector=injector, deadline=3.0)

        assert injector.claimed("kill") == 2
        assert injector.claimed("hang") == 1
        assert chaos_blob == clean_blob
        assert result.worker_respawns >= 2
        assert result.part_step_retries >= 1
        assert result.worker_timeouts >= 1


def _chain_job(length, seen_steps=None, crash_at=None, crash_flag=None):
    """Key 0 forwards a counter to itself for *length* steps; optionally
    dies (a stand-in for the driver crashing) the first time *crash_at*
    is reached."""

    def fn(ctx):
        if seen_steps is not None:
            seen_steps.append(ctx.step_num)
        if crash_at is not None and ctx.step_num == crash_at and not crash_flag["hit"]:
            crash_flag["hit"] = True
            raise RuntimeError("driver died")
        for value in ctx.input_messages():
            ctx.write_state(0, value)
            if value < length:
                ctx.output_message(ctx.key, value + 1)
        return False

    return TestJob(fn, loaders=[MessageListLoader([(0, 1)])])


class TestCheckpointResume:
    def test_resume_skips_completed_steps(self, tmp_path):
        store = LocalKVStore(default_n_parts=4)
        flag = {"hit": False}
        with pytest.raises(ComputeError, match="driver died"):
            run_job(
                store,
                _chain_job(8, crash_at=4, crash_flag=flag),
                fault_tolerance=True,
                checkpoint_interval=2,
                checkpoint_dir=str(tmp_path),
            )
        assert flag["hit"]
        store.close()

        # a fresh store and engine stand in for the restarted driver
        resumed = LocalKVStore(default_n_parts=4)
        seen = []
        result = run_job(
            resumed,
            _chain_job(8, seen_steps=seen),
            fault_tolerance=True,
            checkpoint_interval=2,
            checkpoint_dir=str(tmp_path),
            resume=True,
        )
        # checkpoints landed after steps 1 and 3; the crash hit step 4,
        # so the resumed run starts at step 4 and never re-runs 0–3
        assert result.resumed_from_step == 4
        assert seen and min(seen) == 4
        assert resumed.get_table("state").get(0) == 8
        resumed.close()

    def test_checkpoints_cleared_after_completion(self, tmp_path):
        store = LocalKVStore(default_n_parts=4)
        result = run_job(
            store,
            _chain_job(6),
            fault_tolerance=True,
            checkpoint_interval=2,
            checkpoint_dir=str(tmp_path),
        )
        assert result.checkpoints_written >= 1
        assert result.checkpoint_bytes > 0
        assert result.resumed_from_step == 0  # no resume happened
        manager = CheckpointManager(store, "TestJob", directory=str(tmp_path))
        assert manager.load() is None
        assert manager.last_step() is None
        store.close()

    def test_durable_store_checkpoints_without_directory(self, tmp_path):
        """On a durable store the payload rides a store table — no
        checkpoint directory needed, and resume survives close/reopen."""
        store = PersistentKVStore(str(tmp_path / "db"))
        flag = {"hit": False}
        with pytest.raises(ComputeError, match="driver died"):
            run_job(
                store,
                _chain_job(8, crash_at=4, crash_flag=flag),
                fault_tolerance=True,
                checkpoint_interval=2,
            )
        store.close()

        reopened = PersistentKVStore(str(tmp_path / "db"))
        seen = []
        result = run_job(
            reopened,
            _chain_job(8, seen_steps=seen),
            fault_tolerance=True,
            checkpoint_interval=2,
            resume=True,
        )
        assert result.resumed_from_step == 4
        assert min(seen) == 4
        assert reopened.get_table("state").get(0) == 8
        reopened.close()


class TestCheckpointSpec:
    def test_checkpointing_requires_fault_tolerance(self, tmp_path):
        store = LocalKVStore(default_n_parts=4)
        with pytest.raises(JobSpecError, match="fault_tolerance"):
            run_job(
                store,
                _chain_job(3),
                checkpoint_interval=2,
                checkpoint_dir=str(tmp_path),
            )
        store.close()

    def test_negative_interval_rejected(self, tmp_path):
        store = LocalKVStore(default_n_parts=4)
        with pytest.raises(JobSpecError, match="checkpoint_interval"):
            run_job(
                store,
                _chain_job(3),
                fault_tolerance=True,
                checkpoint_interval=-1,
                checkpoint_dir=str(tmp_path),
            )
        store.close()

    def test_non_durable_store_requires_directory(self):
        store = LocalKVStore(default_n_parts=4)
        with pytest.raises(JobSpecError, match="checkpoint_dir"):
            run_job(
                store,
                _chain_job(3),
                fault_tolerance=True,
                checkpoint_interval=2,
            )
        store.close()

    def test_resume_without_checkpoint_raises(self, tmp_path):
        store = LocalKVStore(default_n_parts=4)
        with pytest.raises(RecoveryError, match="no checkpoint"):
            run_job(
                store,
                _chain_job(3),
                fault_tolerance=True,
                checkpoint_dir=str(tmp_path),
                resume=True,
            )
        store.close()
