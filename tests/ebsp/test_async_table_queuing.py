"""The no-sync engine over the table-backed queue sets (paper §IV-B).

The generic message-queuing implementation stores each queue in a
table of the backing K/V store; this verifies the async engine works
end-to-end through that path, not just the deque fast path.
"""

from __future__ import annotations

import pytest

from repro.ebsp.loaders import MessageListLoader
from repro.ebsp.properties import JobProperties
from repro.ebsp.runner import run_job
from repro.kvstore.local import LocalKVStore
from repro.messaging.table_queue import TableMessageQueuing

from tests.ebsp.jobs import TestJob

INCREMENTAL = JobProperties(incremental=True, no_continue=True)


@pytest.fixture
def store():
    instance = LocalKVStore(default_n_parts=3)
    yield instance
    instance.close()


def test_chain_completes_through_table_queues(store):
    def fn(ctx):
        for value in ctx.input_messages():
            ctx.write_state(0, value)
            if value < 15:
                ctx.output_message(value + 1, value + 1)
        return False

    job = TestJob(fn, properties=INCREMENTAL, loaders=[MessageListLoader([(0, 0)])])
    queuing = TableMessageQueuing(store)
    result = run_job(store, job, synchronize=False, queuing=queuing)
    assert result.compute_invocations == 16
    assert store.get_table("state").get(15) == 15


def test_queue_tables_cleaned_up(store):
    def fn(ctx):
        return False

    job = TestJob(fn, properties=INCREMENTAL, loaders=[MessageListLoader([(0, "x")])])
    queuing = TableMessageQueuing(store)
    run_job(store, job, synchronize=False, queuing=queuing)
    assert not any(name.startswith("__queue__") for name in store.list_tables())


def test_summa_async_through_table_queues(store):
    """The paper's no-sync SUMMA through the store-backed queues."""
    import numpy as np

    from repro.apps.summa import BlockGrid, summa_multiply

    rng = np.random.default_rng(9)
    a = rng.standard_normal((12, 12))
    b = rng.standard_normal((12, 12))
    queuing = TableMessageQueuing(store)
    c, result = summa_multiply(
        store, a, b, BlockGrid(3, 3, 3), synchronize=False, queuing=queuing
    )
    assert not result.synchronized
    assert np.allclose(c, a @ b)
