"""Per-job worker-runtime instrumentation in JobResult."""

from __future__ import annotations

import threading

import pytest

from repro.ebsp.loaders import MessageListLoader
from repro.ebsp.properties import JobProperties
from repro.ebsp.results import Counters
from repro.ebsp.runner import run_job
from repro.kvstore.partitioned import PartitionedKVStore

from tests.ebsp.jobs import TestJob


@pytest.fixture(params=["threaded", "inline", "process"])
def store(request):
    instance = PartitionedKVStore(n_partitions=4, runtime=request.param)
    yield instance
    instance.close()


def _sync_job():
    def fn(ctx):
        ctx.write_state(0, ctx.key)
        return False

    return TestJob(fn, state_tables=["s"], loaders=[MessageListLoader([(i, i) for i in range(8)])])


def _async_job():
    def fn(ctx):
        ctx.write_state(0, ctx.key)
        return False

    return TestJob(
        fn,
        state_tables=["s"],
        loaders=[MessageListLoader([(i, i) for i in range(8)])],
        properties=JobProperties(one_msg=True, no_continue=True, no_ss_order=True),
    )


def test_sync_result_carries_worker_stats(store):
    result = run_job(store, _sync_job(), synchronize=True)
    stats = result.worker_stats
    assert stats["runtime"] == store.runtime.kind
    assert stats["n_workers"] == 4
    # the step enumerations ran as long tasks on the store's workers
    assert stats["tasks"] > 0
    assert result.runtime_tasks > 0
    assert len(stats["workers"]) == 4
    assert sum(w["tasks"] for w in stats["workers"]) == stats["tasks"]


def test_async_result_carries_worker_stats(store):
    result = run_job(store, _async_job(), synchronize=False)
    stats = result.worker_stats
    assert stats["runtime"] == store.runtime.kind
    # the queue-set worker gang is counted against the store's runtime
    assert stats["gang_tasks"] == 4
    assert result.runtime_tasks > 0


def test_counters_are_thread_safe():
    """Regression: part-steps on many workers hammer one Counters
    instance; concurrent ``add``/``record_max`` must lose no updates
    (the facade's lazy metric creation races too — same name from many
    threads must land on one counter)."""
    counters = Counters()
    n_threads, per_thread = 8, 2_000
    barrier = threading.Barrier(n_threads)

    def worker(index):
        barrier.wait()
        for i in range(per_thread):
            counters.add("messages_sent")
            counters.add("bytes", 3)
            counters.record_max("hwm", index * per_thread + i)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert counters.get("messages_sent") == n_threads * per_thread
    assert counters.get("bytes") == 3 * n_threads * per_thread
    assert counters.get("hwm") == n_threads * per_thread - 1
    snapshot = counters.snapshot()
    assert snapshot["messages_sent"] == n_threads * per_thread
    assert snapshot["hwm"] == n_threads * per_thread - 1


def test_stats_are_per_job_deltas(store):
    first = run_job(store, _sync_job(), synchronize=True)
    store.drop_table("s")
    second = run_job(store, _sync_job(), synchronize=True)
    # the second job's stats must not include the first job's work:
    # equal workloads report (approximately) equal task counts
    assert abs(second.worker_stats["tasks"] - first.worker_stats["tasks"]) <= max(
        4, first.worker_stats["tasks"] // 2
    )
