"""Elastic repartitioning, end to end through the engine.

The workload is deliberately skewed: every vertex messages a set of hub
vertices whose integer ids all hash into logical part 0, and compute
cost scales with message count — so part 0 carries ~4x the load of its
peers until the controller splits it.  The conformance bar is strict:
the elastic run must produce **byte-identical** final state to the
static run, on every runtime, because splitting only re-routes whole
keys (all of a key's messages land in one physical part and compute
folds them in sorted order).
"""

from __future__ import annotations

import math
import pickle

import pytest

from repro.errors import JobSpecError
from repro.ebsp.job import Compute, Job
from repro.ebsp.loaders import Loader
from repro.ebsp.runner import run_job
from repro.elastic import ElasticConfig
from repro.kvstore.api import TableSpec
from repro.kvstore.partitioned import PartitionedKVStore

N = 64
STEPS = 6
N_PARTS = 4
#: integer keys hash to themselves (mod n_parts), so these all live in
#: logical part 0
HUBS = [0, 4, 8, 12]

#: aggressive policy so a short job still exercises split decisions
AGGRESSIVE = dict(
    split_threshold=1.2,
    min_part_seconds=0.0001,
    warmup_steps=1,
    cooldown_steps=0,
)


class SkewCompute(Compute):
    def compute(self, ctx):
        msgs = sorted(ctx.input_messages())
        acc = sum(msgs)
        for _ in range(20 * max(1, len(msgs))):
            acc = math.sqrt(acc * acc + 1.0) - 1.0 + 1e-9
        ctx.write_state(0, round(acc + sum(msgs), 9))
        if ctx.step_num >= STEPS:
            return False
        for hub in HUBS:
            ctx.output_message(hub, round((ctx.key % 7) * 0.25 + 1.0, 6))
        ctx.output_message((ctx.key * 13 + 1) % N, 0.5)
        return True


class FadingSkewCompute(Compute):
    """Hubs are hot early, then part 0 goes completely cold — the merge
    signal.  A vertex stays active while it returns True, so cooling a
    part takes both halting its vertices and routing messages away."""

    def compute(self, ctx):
        msgs = sorted(ctx.input_messages())
        acc = sum(msgs)
        for _ in range(20 * max(1, len(msgs))):
            acc = math.sqrt(acc * acc + 1.0) - 1.0 + 1e-9
        ctx.write_state(0, round(acc + sum(msgs), 9))
        if ctx.step_num >= STEPS + 6:
            return False
        if ctx.key % N_PARTS == 0 and ctx.step_num >= 4:
            return False
        if ctx.step_num <= 3:
            for hub in HUBS:
                ctx.output_message(hub, round((ctx.key % 7) * 0.25 + 1.0, 6))
        # the ring avoids part 0 once the hubs fall silent, so nothing
        # reactivates its halted vertices and its load decays to zero
        dest = (ctx.key * 13 + 1) % N
        if ctx.step_num >= 4 and dest % N_PARTS == 0:
            dest += 1
        ctx.output_message(dest, 0.5)
        return True


class SeedLoader(Loader):
    def load(self, ctx):
        for key in range(N):
            ctx.put_state(0, key, 0.0)
            ctx.send_message(key, 1.0)


class SkewJob(Job):
    def __init__(self, compute=None):
        self._compute = compute or SkewCompute()

    def state_table_names(self):
        return ["sk_state"]

    def get_compute(self):
        return self._compute

    def loaders(self):
        return [SeedLoader()]


def run_skewed(runtime, elastic, compute=None, **kwargs):
    with PartitionedKVStore(n_partitions=N_PARTS, runtime=runtime) as store:
        result = run_job(
            store, SkewJob(compute), synchronize=True, elastic=elastic, **kwargs
        )
        state = sorted(store.get_table("sk_state").items())
        return result, pickle.dumps(state, protocol=4)


class TestConformance:
    @pytest.mark.parametrize("runtime", ["inline", "threaded", "process"])
    def test_elastic_matches_static_bytes(self, runtime):
        static, static_blob = run_skewed(runtime, elastic=False)
        elastic, elastic_blob = run_skewed(
            runtime, elastic=ElasticConfig(**AGGRESSIVE)
        )
        assert elastic_blob == static_blob
        assert elastic.steps == static.steps
        assert elastic.parts_split >= 1
        assert elastic.load_imbalance > 1.0

    def test_elastic_off_by_default(self):
        result, _ = run_skewed("inline", elastic=False)
        assert result.parts_split == 0
        assert result.parts_merged == 0
        assert result.parts_migrated == 0
        assert result.load_imbalance == 0.0

    def test_cold_split_part_merges_back(self):
        static, static_blob = run_skewed(
            "inline", elastic=False, compute=FadingSkewCompute()
        )
        config = ElasticConfig(merge_threshold=0.6, **AGGRESSIVE)
        elastic, elastic_blob = run_skewed(
            "inline", elastic=config, compute=FadingSkewCompute()
        )
        assert elastic_blob == static_blob
        assert elastic.parts_split >= 1
        assert elastic.parts_merged >= 1

    def test_counters_surface_in_metrics(self):
        result, _ = run_skewed("inline", elastic=ElasticConfig(**AGGRESSIVE))
        assert result.counters.get("parts_split") >= 1
        assert "parts_split" in result.metrics
        assert "load_imbalance" in result.metrics
        assert result.migration_seconds >= 0.0


class TestSpecValidation:
    def test_custom_key_hash_rejected(self):
        with PartitionedKVStore(n_partitions=N_PARTS, runtime="inline") as store:
            store.create_table(
                TableSpec(
                    name="sk_state",
                    n_parts=N_PARTS,
                    key_hash=lambda key: 0,
                )
            )
            with pytest.raises(JobSpecError, match="key hash"):
                run_job(store, SkewJob(), synchronize=True, elastic=True)

    def test_invalid_elastic_value_rejected(self):
        with PartitionedKVStore(n_partitions=N_PARTS, runtime="inline") as store:
            with pytest.raises(JobSpecError):
                run_job(store, SkewJob(), synchronize=True, elastic="aggressive")

    def test_elastic_true_uses_defaults(self):
        # elastic=True is ElasticConfig(); conservative defaults may or
        # may not split this short job, but routing must stay correct
        static, static_blob = run_skewed("inline", elastic=False)
        elastic, elastic_blob = run_skewed("inline", elastic=True)
        assert elastic_blob == static_blob
        assert elastic.steps == static.steps
