"""Scheduler lifecycle under shutdown/cancellation with work in flight.

Pins the contract of the runtime-backed scheduler: queued jobs are
cancelled at shutdown, running jobs drain to completion, no worker
threads are orphaned, and the whole scheduler works under the inline
runtime for deterministic debugging.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import JobError
from repro.ebsp.loaders import MessageListLoader
from repro.ebsp.scheduler import JobScheduler, JobState
from repro.kvstore.local import LocalKVStore

from tests.ebsp.jobs import TestJob


@pytest.fixture
def store():
    instance = LocalKVStore(default_n_parts=4)
    yield instance
    instance.close()


def _job(table: str, fn=None):
    if fn is None:
        def fn(ctx):  # noqa: E306
            ctx.write_state(0, "done")
            return False

    return TestJob(fn, state_tables=[table], loaders=[MessageListLoader([(0, 1)])])


def _gated_job(table: str, started: threading.Event, gate: threading.Event):
    def slow(ctx):
        started.set()
        gate.wait(10)
        return False

    return _job(table, slow)


def test_shutdown_with_queued_and_running_jobs(store):
    """Running job completes, queued job is cancelled, states are final."""
    started, gate = threading.Event(), threading.Event()
    scheduler = JobScheduler(store, max_concurrent=1)
    running = scheduler.submit(_gated_job("s1", started, gate))
    queued = scheduler.submit(_job("s2"))
    assert started.wait(10)
    assert running.state is JobState.RUNNING
    assert queued.state is JobState.QUEUED

    finished = threading.Event()

    def do_shutdown():
        scheduler.shutdown(wait=True)
        finished.set()

    shutter = threading.Thread(target=do_shutdown)
    shutter.start()
    # the queued job is cancelled immediately, before the drain completes
    assert queued.wait(10)
    assert queued.state is JobState.CANCELLED
    assert not finished.is_set() or running.done
    gate.set()
    shutter.join(10)
    assert finished.is_set()
    assert running.state is JobState.SUCCEEDED
    assert running.result is not None


def test_submit_after_shutdown_raises(store):
    scheduler = JobScheduler(store)
    scheduler.shutdown(wait=True)
    with pytest.raises(JobError):
        scheduler.submit(_job("t"))


def test_shutdown_is_idempotent(store):
    scheduler = JobScheduler(store)
    handle = scheduler.submit(_job("t"))
    scheduler.shutdown(wait=True)
    scheduler.shutdown(wait=True)
    assert handle.done


def test_shutdown_leaves_no_worker_threads(store):
    baseline = threading.active_count()
    scheduler = JobScheduler(store, max_concurrent=3)
    handles = [scheduler.submit(_job(f"t{i}")) for i in range(6)]
    assert scheduler.wait_all(timeout=60)
    scheduler.shutdown(wait=True)
    assert all(h.state is JobState.SUCCEEDED for h in handles)
    deadline = time.monotonic() + 5
    while time.monotonic() < deadline and threading.active_count() > baseline:
        time.sleep(0.01)
    assert threading.active_count() <= baseline, [
        t.name for t in threading.enumerate()
    ]


def test_cancel_queued_frees_nothing_but_queue(store):
    """Cancelling a queued job must not consume a slot or block peers."""
    started, gate = threading.Event(), threading.Event()
    with JobScheduler(store, max_concurrent=1) as scheduler:
        running = scheduler.submit(_gated_job("s1", started, gate))
        queued = scheduler.submit(_job("s1"))  # conflicts: stays queued
        assert started.wait(10)
        assert scheduler.cancel(queued.job_id) is True
        assert queued.state is JobState.CANCELLED
        follow_up = scheduler.submit(_job("s2"))  # disjoint: may run now
        gate.set()
        assert scheduler.wait_all(timeout=30)
        assert running.state is JobState.SUCCEEDED
        assert follow_up.state is JobState.SUCCEEDED


def test_slots_are_reused_across_many_jobs(store):
    with JobScheduler(store, max_concurrent=2) as scheduler:
        handles = [scheduler.submit(_job(f"t{i}")) for i in range(10)]
        assert scheduler.wait_all(timeout=60)
        stats = scheduler.runtime_stats()
    assert all(h.state is JobState.SUCCEEDED for h in handles)
    assert stats["n_workers"] == 2
    assert stats["tasks"] == 10  # one runtime task per job


def test_forget_drops_only_finished_handles(store):
    """forget() retires terminal handles so a long-lived scheduler does
    not grow per-job state; live jobs are refused."""
    started, gate = threading.Event(), threading.Event()
    with JobScheduler(store, max_concurrent=1) as scheduler:
        running = scheduler.submit(_gated_job("f1", started, gate))
        assert started.wait(10)
        assert scheduler.forget(running.job_id) is False  # still running
        gate.set()
        assert running.wait(10)
        assert scheduler.forget(running.job_id) is True
        with pytest.raises(JobError):
            scheduler.handle(running.job_id)
        assert scheduler.forget(running.job_id) is False  # already gone
        assert scheduler.jobs() == []
        assert scheduler._engine_kwargs == {}  # no kwargs leak either


def test_inline_runtime_runs_jobs_synchronously(store):
    """runtime="inline" turns the scheduler into a deterministic,
    single-threaded debugging harness: submit() returns with the job
    already finished."""
    scheduler = JobScheduler(store, max_concurrent=2, runtime="inline")
    handle = scheduler.submit(_job("t"))
    assert handle.state is JobState.SUCCEEDED
    assert handle.result is not None
    stats = scheduler.runtime_stats()
    assert stats["runtime"] == "inline"
    assert stats["tasks"] == 1
    scheduler.shutdown(wait=True)
