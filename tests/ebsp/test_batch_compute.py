"""The columnar data plane: batch compute vs the per-key path.

One job implements both faces over identical integer math, so the
engine's ``batch_compute`` flag must not change any observable — final
state, aggregates, invocation and message counts — on any runtime
(inline, threaded, process).  Classes are module-level so the job can
ship to worker processes.
"""

from __future__ import annotations

from typing import Any, Dict, List

import numpy as np
import pytest

from repro.ebsp.aggregators import SumAggregator
from repro.ebsp.job import BatchComputeContext, Compute, ComputeContext, Job
from repro.ebsp.loaders import Loader
from repro.ebsp.properties import JobProperties
from repro.ebsp.runner import run_job
from repro.ebsp.transport import (
    MessageBatch,
    SpillWriter,
    StepColumns,
    collect_step_columns,
    create_transport_table,
    group_step_columns,
)
from repro.errors import JobSpecError, PropertyViolationError
from repro.kvstore.api import TableSpec
from repro.kvstore.local import LocalKVStore
from repro.kvstore.partitioned import PartitionedKVStore

from tests.ebsp.jobs import TestJob

N = 96
STEPS = 3
FANOUT = 3
RUNTIMES = ["inline", "threaded", "process"]


class DualFaceCompute(Compute):
    """Integer fan-out/fold with a per-key face and a columnar face.

    Integer arithmetic is exact under any fold order, so both faces
    must produce identical state, aggregates, and messages.
    """

    def __init__(self, n: int):
        self._n = n

    def compute(self, ctx: ComputeContext) -> bool:
        total = 0
        for message in ctx.input_messages():
            total += int(message)
        prev = ctx.read_state(0) or 0
        ctx.write_state(0, int(prev + total))
        ctx.aggregate_value("mass", total)
        if ctx.step_num >= STEPS:
            return False
        for hop in range(1, FANOUT + 1):
            target = (int(ctx.key) * 5 + hop * 11) % self._n
            ctx.output_message(target, np.int64(total + hop))
        return True

    def compute_batch(self, ctx: BatchComputeContext) -> Any:
        batch = ctx.messages
        keys = ctx.keys
        n = len(keys)
        totals = np.zeros(n, dtype=np.int64)
        payloads = batch.payload_array()
        if payloads is None:
            for i, messages in enumerate(batch):
                totals[i] = sum(int(m) for m in messages)
        elif len(payloads):
            nonzero = batch.counts > 0
            totals[nonzero] = np.add.reduceat(
                payloads.astype(np.int64), batch.offsets[:-1][nonzero]
            )
        prev = ctx.read_states(0)
        ctx.write_states(
            0,
            [
                int((0 if p is None else p) + t)
                for p, t in zip(prev, totals.tolist())
            ],
        )
        ctx.aggregate_values("mass", totals)
        if ctx.step_num >= STEPS:
            return False
        key_list = keys.tolist() if isinstance(keys, np.ndarray) else list(keys)
        keys64 = np.asarray([int(k) for k in key_list], dtype=np.int64)
        for hop in range(1, FANOUT + 1):
            ctx.send_messages((keys64 * 5 + hop * 11) % self._n, totals + hop)
        return True


class SeedLoader(Loader):
    def __init__(self, n: int):
        self._n = n

    def load(self, ctx) -> None:
        for key in range(self._n):
            ctx.put_state(0, key, 0)
            ctx.send_message(key, np.int64(key % 13))


class DualFaceJob(Job):
    def __init__(self, n: int):
        self._n = n

    def state_table_names(self) -> List[str]:
        return ["dual_state"]

    def get_compute(self) -> Compute:
        return DualFaceCompute(self._n)

    def aggregators(self) -> Dict[str, Any]:
        return {"mass": SumAggregator(0)}

    def loaders(self) -> List[Loader]:
        return [SeedLoader(self._n)]


def _run(runtime: str, batch_compute):
    with PartitionedKVStore(n_partitions=4, runtime=runtime) as store:
        result = run_job(
            store, DualFaceJob(N), synchronize=True, batch_compute=batch_compute
        )
        state = sorted(store.get_table("dual_state").items())
    return result, state


class TestParityAcrossRuntimes:
    @pytest.mark.parametrize("runtime", RUNTIMES)
    def test_batch_matches_perkey(self, runtime):
        perkey, perkey_state = _run(runtime, batch_compute=False)
        batch, batch_state = _run(runtime, batch_compute=None)
        assert batch_state == perkey_state
        assert batch.steps == perkey.steps
        assert dict(batch.aggregates) == dict(perkey.aggregates)
        for counter in ("compute_invocations", "messages_sent"):
            assert batch.counters[counter] == perkey.counters[counter], counter
        assert batch.counters.get("batch_fallbacks", 0) == 0

    def test_batch_identical_across_runtimes(self):
        baseline, baseline_state = _run("inline", batch_compute=True)
        for runtime in RUNTIMES[1:]:
            result, state = _run(runtime, batch_compute=True)
            assert state == baseline_state, runtime
            assert dict(result.aggregates) == dict(baseline.aggregates)


class MixedKeyCompute(Compute):
    """Batch-capable compute whose keys are not mutually orderable."""

    def compute(self, ctx: ComputeContext) -> bool:
        ctx.write_state(0, sum(int(m) for m in ctx.input_messages()))
        return False

    def compute_batch(self, ctx: BatchComputeContext) -> Any:
        totals = [sum(int(m) for m in msgs) for msgs in ctx.messages]
        ctx.write_states(0, totals)
        return False


class MixedKeyLoader(Loader):
    def load(self, ctx) -> None:
        for key in (1, "a", 2, "b"):
            ctx.send_message(key, np.int64(7))


class MixedKeyJob(Job):
    def state_table_names(self) -> List[str]:
        return ["mixed_state"]

    def get_compute(self) -> Compute:
        return MixedKeyCompute()

    def loaders(self) -> List[Loader]:
        return [MixedKeyLoader()]


class TestFallback:
    def test_unorderable_keys_fall_back_per_key(self):
        # one part forces int and str keys into the same grouping sort
        with PartitionedKVStore(n_partitions=1) as store:
            result = run_job(store, MixedKeyJob(), synchronize=True)
            state = dict(store.get_table("mixed_state").items())
        assert result.counters["batch_fallbacks"] == 1
        assert state == {1: 7, "a": 7, 2: 7, "b": 7}

    def test_batch_compute_true_requires_override(self):
        with PartitionedKVStore(n_partitions=2) as store:
            with pytest.raises(JobSpecError, match="compute_batch"):
                run_job(
                    store,
                    TestJob(lambda ctx: False),
                    synchronize=True,
                    batch_compute=True,
                )


class OneMsgViolatingCompute(Compute):
    def compute(self, ctx: ComputeContext) -> bool:
        return False

    def compute_batch(self, ctx: BatchComputeContext) -> Any:
        return None


class DoubleSendLoader(Loader):
    def load(self, ctx) -> None:
        ctx.send_message(3, np.int64(1))
        ctx.send_message(3, np.int64(2))


class OneMsgJob(Job):
    def state_table_names(self) -> List[str]:
        return ["one_msg_state"]

    def get_compute(self) -> Compute:
        return OneMsgViolatingCompute()

    def loaders(self) -> List[Loader]:
        return [DoubleSendLoader()]

    def properties(self) -> JobProperties:
        # one-msg without no-continue keeps the collect (and thus batch)
        # path; the declaration is a lie the engine must catch
        return JobProperties(one_msg=True)


def test_batch_path_enforces_one_msg():
    with PartitionedKVStore(n_partitions=2) as store:
        with pytest.raises(PropertyViolationError, match="one-msg"):
            run_job(store, OneMsgJob(), synchronize=True)


class TestMessageBatch:
    def _batch(self) -> MessageBatch:
        return MessageBatch(
            np.arange(6, dtype=np.float64),
            np.asarray([0, 2, 2, 5, 6], dtype=np.int64),
        )

    def test_len_counts_and_getitem(self):
        batch = self._batch()
        assert len(batch) == 4
        assert batch.counts.tolist() == [2, 0, 3, 1]
        assert batch[0] == [0.0, 1.0]
        assert batch[1] == []
        assert batch[2] == [2.0, 3.0, 4.0]
        assert [m for m in batch] == [batch[i] for i in range(4)]

    def test_group_index_aligns_payloads(self):
        batch = self._batch()
        assert batch.group_index().tolist() == [0, 0, 2, 2, 2, 3]

    def test_slice(self):
        piece = self._batch().slice(1, 3)
        assert len(piece) == 2
        assert piece[0] == []
        assert piece[1] == [2.0, 3.0, 4.0]

    def test_payload_array_only_when_typed(self):
        assert self._batch().payload_array() is not None
        ragged = np.empty(2, dtype=object)
        ragged[:] = [(1, 2), (3,)]
        assert MessageBatch(ragged, np.asarray([0, 1, 2])).payload_array() is None


class TestGroupStepColumns:
    def test_groups_ascending_with_cont_only_keys(self):
        cols = StepColumns()
        cols.msg_key_chunks.append(np.asarray([5, 3, 5], dtype=np.int64))
        cols.msg_payload_chunks.append(np.asarray([1.0, 2.0, 3.0]))
        cols.cont_key_chunks.append(np.asarray([9, 3], dtype=np.int64))
        keys, batch = group_step_columns(cols)
        assert keys.tolist() == [3, 5, 9]
        assert batch.counts.tolist() == [1, 2, 0]
        assert batch[0] == [2.0]
        assert batch[1] == [1.0, 3.0]  # arrival order within destination

    def test_empty(self):
        keys, batch = group_step_columns(StepColumns())
        assert len(keys) == 0
        assert len(batch) == 0

    def test_unorderable_keys_raise(self):
        cols = StepColumns()
        cols.cont_key_chunks.append(np.asarray([1, "a"], dtype=object))
        with pytest.raises(TypeError):
            group_step_columns(cols)


class TestBatchSpillRoundtrip:
    def test_columns_roundtrip_through_transport(self):
        with LocalKVStore(default_n_parts=2) as store:
            transport = create_transport_table(store, "xport", 2)
            ref = store.create_table(TableSpec(name="ref", n_parts=2))
            writer = SpillWriter(
                transport,
                src_part=0,
                step=0,
                n_parts=2,
                part_of=ref.part_of,
                part_of_many=ref.part_of_many,
            )
            keys = np.arange(10, dtype=np.int64)
            writer.add_message_batch(keys, keys.astype(np.float64) * 0.5)
            writer.add_continue_batch(np.asarray([1, 4], dtype=np.int64))
            writer.flush_all()
            assert writer.messages_added == 10
            assert writer.continues_added == 2

            seen: Dict[int, list] = {}
            conts: list = []
            for part in range(2):
                view = transport._parts[part]
                cols = collect_step_columns(view, 0)
                group_keys, batch = group_step_columns(cols)
                for i, key in enumerate(group_keys.tolist()):
                    if batch.counts[i]:
                        seen[key] = batch[i]
                    else:
                        conts.append(key)
            assert sorted(seen) == list(range(10))
            assert all(seen[k] == [k * 0.5] for k in seen)
            assert conts == []  # 1 and 4 also got messages, so they group
