"""Queue-set conformance across both implementations (paper §III-B)."""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import NoSuchQueueSetError, QueueError
from repro.kvstore.local import LocalKVStore
from repro.messaging.local_queue import LocalMessageQueuing, LocalQueueSet
from repro.messaging.table_queue import TableMessageQueuing


@pytest.fixture(params=["local", "table"])
def queuing(request):
    if request.param == "local":
        yield LocalMessageQueuing()
    else:
        store = LocalKVStore(default_n_parts=4)
        yield TableMessageQueuing(store)
        store.close()


class TestQueueSetBasics:
    def test_put_then_worker_reads(self, queuing):
        qs = queuing.create_queue_set("q", 3)
        qs.put(1, "hello")

        def worker(ctx):
            if ctx.part_index == 1:
                return ctx.read(timeout=2)
            return ctx.read(timeout=0.05)

        results = qs.run_workers(worker)
        assert results[1] == "hello"
        assert results[0] is None and results[2] is None

    def test_read_timeout_returns_none(self, queuing):
        qs = queuing.create_queue_set("q", 1)
        start = time.monotonic()
        results = qs.run_workers(lambda ctx: ctx.read(timeout=0.05))
        assert results == [None]
        assert time.monotonic() - start < 2

    def test_per_sender_fifo_order(self, queuing):
        """Messages from one sender to one queue arrive in send order —
        the guarantee the EBSP `incremental` property rests on."""
        qs = queuing.create_queue_set("q", 2)
        for i in range(50):
            qs.put(0, i)

        def worker(ctx):
            if ctx.part_index != 0:
                return []
            got = []
            for _ in range(50):
                got.append(ctx.read(timeout=2))
            return got

        results = qs.run_workers(worker)
        assert results[0] == list(range(50))

    def test_workers_can_message_each_other(self, queuing):
        qs = queuing.create_queue_set("q", 2)
        qs.put(0, 1)

        def worker(ctx):
            if ctx.part_index == 0:
                value = ctx.read(timeout=2)
                ctx.put(1, value + 1)
                return value
            return ctx.read(timeout=2)

        results = qs.run_workers(worker)
        assert results == [1, 2]

    def test_none_message_rejected(self, queuing):
        qs = queuing.create_queue_set("q", 1)
        with pytest.raises(QueueError):
            qs.put(0, None)

    def test_pending_counts(self, queuing):
        qs = queuing.create_queue_set("q", 2)
        qs.put(0, "a")
        qs.put(0, "b")
        assert qs.pending(0) == 2
        assert qs.pending(1) == 0


class TestNamespace:
    def test_duplicate_name_rejected(self, queuing):
        queuing.create_queue_set("q", 1)
        with pytest.raises(QueueError):
            queuing.create_queue_set("q", 1)

    def test_delete_then_put_rejected(self, queuing):
        qs = queuing.create_queue_set("q", 1)
        queuing.delete_queue_set("q")
        with pytest.raises(NoSuchQueueSetError):
            qs.put(0, "late")

    def test_delete_unknown(self, queuing):
        with pytest.raises(NoSuchQueueSetError):
            queuing.delete_queue_set("ghost")

    def test_get_roundtrip(self, queuing):
        qs = queuing.create_queue_set("q", 2)
        assert queuing.get_queue_set("q") is qs

    def test_zero_parts_rejected(self, queuing):
        with pytest.raises(QueueError):
            queuing.create_queue_set("q", 0)


class TestTableQueueInternals:
    def test_queue_table_is_private(self):
        store = LocalKVStore(default_n_parts=2)
        queuing = TableMessageQueuing(store)
        queuing.create_queue_set("q", 2)
        assert "__queue__q" in store.list_tables()
        queuing.delete_queue_set("q")
        assert "__queue__q" not in store.list_tables()
        store.close()

    def test_messages_placed_at_destination_part(self):
        store = LocalKVStore(default_n_parts=3)
        queuing = TableMessageQueuing(store)
        qs = queuing.create_queue_set("q", 3)
        qs.put(2, "payload")
        table = store.get_table("__queue__q")
        assert table.part_of((2, 0)) == 2
        assert table.get((2, 0)) == "payload"
        store.close()


class TestWorkStealing:
    def test_steal_takes_from_longest(self):
        qs = LocalQueueSet("q", 3)
        for i in range(5):
            qs.put(1, f"m{i}")
        qs.put(2, "lone")
        stolen = qs.steal(exclude=0)
        assert stolen == "m4"  # from the tail of the longest queue

    def test_steal_nothing_available(self):
        qs = LocalQueueSet("q", 2)
        qs.put(0, "mine")
        assert qs.steal(exclude=0) is None

    def test_blocked_reader_wakes_on_put(self):
        qs = LocalQueueSet("q", 1)
        result = {}

        def reader():
            result["value"] = qs._queues[0].read(timeout=5)

        thread = threading.Thread(target=reader)
        thread.start()
        time.sleep(0.05)
        qs.put(0, "wake")
        thread.join(timeout=5)
        assert result["value"] == "wake"
