"""MapReduce emulation atop K/V EBSP."""

from __future__ import annotations

import pytest

from repro.errors import JobSpecError
from repro.kvstore.api import TableSpec
from repro.mapreduce import (
    IteratedMapReduce,
    IterationDecision,
    Mapper,
    MapReduceSpec,
    Reducer,
    run_mapreduce,
)


class WordCountMapper(Mapper):
    def map(self, key, value, emit):
        for word in value.split():
            emit(word, 1)


class SumReducer(Reducer):
    def reduce(self, key, values, emit):
        emit(key, sum(values))


class IdentityMapper(Mapper):
    def map(self, key, value, emit):
        emit(key, value)


class TestSingleCouplet:
    def test_word_count(self, fast_store):
        docs = fast_store.create_table(TableSpec(name="docs"))
        docs.put_many([(0, "a b a"), (1, "b c"), (2, "a c c")])
        run_mapreduce(
            fast_store,
            MapReduceSpec(WordCountMapper(), SumReducer()),
            "docs",
            "counts",
        )
        counts = dict(fast_store.get_table("counts").items())
        assert counts == {"a": 3, "b": 2, "c": 3}

    def test_combiner_preserves_result(self, fast_store):
        docs = fast_store.create_table(TableSpec(name="docs"))
        docs.put_many([(i, "x y " * 5) for i in range(10)])
        run_mapreduce(
            fast_store,
            MapReduceSpec(WordCountMapper(), SumReducer(), combiner=lambda a, b: a + b),
            "docs",
            "counts",
        )
        counts = dict(fast_store.get_table("counts").items())
        assert counts == {"x": 50, "y": 50}

    def test_exactly_two_steps(self, fast_store):
        docs = fast_store.create_table(TableSpec(name="docs"))
        docs.put(0, "hello")
        result = run_mapreduce(
            fast_store, MapReduceSpec(WordCountMapper(), SumReducer()), "docs", "out"
        )
        assert result.job_result.steps == 2
        assert result.barriers == 2

    def test_output_copartitioned_with_input(self, fast_store):
        fast_store.create_table(TableSpec(name="docs", n_parts=3))
        fast_store.get_table("docs").put(0, "w")
        run_mapreduce(
            fast_store, MapReduceSpec(WordCountMapper(), SumReducer()), "docs", "out"
        )
        assert fast_store.get_table("out").n_parts == 3

    def test_mismatched_existing_output_rejected(self, fast_store):
        fast_store.create_table(TableSpec(name="docs", n_parts=3))
        fast_store.create_table(TableSpec(name="out", n_parts=2))
        with pytest.raises(JobSpecError):
            run_mapreduce(
                fast_store, MapReduceSpec(WordCountMapper(), SumReducer()), "docs", "out"
            )

    def test_in_place_output(self, fast_store):
        """output == input: map reads complete before reduce writes."""
        table = fast_store.create_table(TableSpec(name="data"))
        table.put_many([(i, i) for i in range(10)])

        class Doubler(Reducer):
            def reduce(self, key, values, emit):
                emit(key, sum(values) * 2)

        run_mapreduce(
            fast_store, MapReduceSpec(IdentityMapper(), Doubler()), "data", "data"
        )
        assert dict(fast_store.get_table("data").items()) == {i: i * 2 for i in range(10)}

    def test_reduce_can_emit_foreign_keys(self, fast_store):
        table = fast_store.create_table(TableSpec(name="data"))
        table.put_many([(i, i) for i in range(5)])

        class Redirect(Reducer):
            def reduce(self, key, values, emit):
                emit(f"moved-{key}", values[0])

        run_mapreduce(
            fast_store, MapReduceSpec(IdentityMapper(), Redirect()), "data", "out"
        )
        out = dict(fast_store.get_table("out").items())
        assert out == {f"moved-{i}": i for i in range(5)}

    def test_sorted_reduce_property(self, local_store):
        table = local_store.create_table(TableSpec(name="data"))
        table.put_many([(i, i) for i in range(12)])
        order = []

        class Recorder(Reducer):
            def reduce(self, key, values, emit):
                order.append(key)

        run_mapreduce(
            local_store,
            MapReduceSpec(IdentityMapper(), Recorder(), sorted_reduce=True),
            "data",
            "out",
        )
        per_part = {}
        t = local_store.get_table("data")
        for key in order:
            per_part.setdefault(t.part_of(key), []).append(key)
        for keys in per_part.values():
            assert keys == sorted(keys)


class TestIterated:
    def test_runs_until_cap(self, fast_store):
        table = fast_store.create_table(TableSpec(name="data"))
        table.put(0, 0)

        class Increment(Reducer):
            def reduce(self, key, values, emit):
                emit(key, values[0] + 1)

        driver = IteratedMapReduce(
            lambda i: MapReduceSpec(IdentityMapper(), Increment()),
            "data",
            max_iterations=5,
        )
        outcome = driver.run(fast_store)
        assert outcome.iterations == 5
        assert fast_store.get_table("data").get(0) == 5
        # the structural cost the paper measures: 2 barriers per iteration
        assert outcome.total_barriers == 10

    def test_until_predicate_stops_early(self, fast_store):
        table = fast_store.create_table(TableSpec(name="data"))
        table.put(0, 0)

        class Increment(Reducer):
            def reduce(self, key, values, emit):
                emit(key, values[0] + 1)

        def until(store, iteration, result):
            if store.get_table("data").get(0) >= 3:
                return IterationDecision.STOP
            return IterationDecision.CONTINUE

        driver = IteratedMapReduce(
            lambda i: MapReduceSpec(IdentityMapper(), Increment()),
            "data",
            max_iterations=100,
            until=until,
        )
        outcome = driver.run(fast_store)
        assert outcome.iterations == 3

    def test_bad_iteration_cap(self):
        with pytest.raises(ValueError):
            IteratedMapReduce(lambda i: None, "t", max_iterations=0)
