"""CSV / JSONL / text import-export helpers."""

from __future__ import annotations

import json

import pytest

from repro.mapreduce.formats import (
    dump_csv,
    dump_jsonl,
    load_csv,
    load_jsonl,
    load_text_lines,
)


class TestCsv:
    def test_roundtrip(self, local_store, tmp_path):
        src = tmp_path / "people.csv"
        src.write_text("id,name,age\nu1,ada,36\nu2,bob,41\n")
        loaded = load_csv(local_store, str(src), "people", key_column="id")
        assert loaded == 2
        table = local_store.get_table("people")
        assert table.get("u1") == {"id": "u1", "name": "ada", "age": "36"}

        out = tmp_path / "out.csv"
        written = dump_csv(local_store, "people", str(out), columns=["id", "name"])
        assert written == 2
        lines = out.read_text().strip().splitlines()
        assert lines[0] == "id,name"
        assert sorted(lines[1:]) == ["u1,ada", "u2,bob"]

    def test_missing_key_column(self, local_store, tmp_path):
        src = tmp_path / "bad.csv"
        src.write_text("a,b\n1,2\n")
        with pytest.raises(ValueError):
            load_csv(local_store, str(src), "t", key_column="id")

    def test_batching(self, local_store, tmp_path):
        src = tmp_path / "many.csv"
        src.write_text("id\n" + "\n".join(f"k{i}" for i in range(25)) + "\n")
        loaded = load_csv(local_store, str(src), "t", key_column="id", batch_size=4)
        assert loaded == 25
        assert local_store.get_table("t").size() == 25


class TestJsonl:
    def test_roundtrip(self, local_store, tmp_path):
        src = tmp_path / "events.jsonl"
        records = [{"id": i, "kind": "click" if i % 2 else "view"} for i in range(5)]
        src.write_text("\n".join(json.dumps(r) for r in records) + "\n\n")
        loaded = load_jsonl(local_store, str(src), "events", key_of=lambda r: r["id"])
        assert loaded == 5
        assert local_store.get_table("events").get(3)["kind"] == "click"

        out = tmp_path / "out.jsonl"
        written = dump_jsonl(local_store, "events", str(out))
        assert written == 5
        dumped = [json.loads(line) for line in out.read_text().splitlines()]
        assert {d["key"] for d in dumped} == set(range(5))


class TestTextLines:
    def test_line_numbered(self, local_store, tmp_path):
        src = tmp_path / "corpus.txt"
        src.write_text("first line\nsecond line\n")
        loaded = load_text_lines(local_store, str(src), "corpus")
        assert loaded == 2
        assert local_store.get_table("corpus").get(1) == "second line"

    def test_feeds_word_count(self, local_store, tmp_path):
        from repro.mapreduce.library import word_count

        src = tmp_path / "corpus.txt"
        src.write_text("a b\nb c\n")
        load_text_lines(local_store, str(src), "corpus")
        word_count(local_store, "corpus", "counts")
        assert dict(local_store.get_table("counts").items()) == {"a": 1, "b": 2, "c": 1}
