"""The MapReduce standard library: canned mappers/reducers, joins, top-k."""

from __future__ import annotations

import pytest

from repro.errors import JobSpecError
from repro.kvstore.api import TableSpec
from repro.mapreduce.library import (
    CollectReducer,
    CountReducer,
    FlatMapper,
    FnMapper,
    FnReducer,
    IdentityMapper,
    MaxReducer,
    MeanReducer,
    MinReducer,
    ProjectionMapper,
    SumReducer,
    group_aggregate,
    join_tables,
    top_k,
    word_count,
)
from repro.mapreduce.api import MapReduceSpec
from repro.mapreduce.engine import run_mapreduce


class TestCannedPieces:
    def test_word_count_helper(self, local_store):
        docs = local_store.create_table(TableSpec(name="docs"))
        docs.put_many([(0, "x y x"), (1, "y")])
        word_count(local_store, "docs", "counts")
        assert dict(local_store.get_table("counts").items()) == {"x": 2, "y": 2}

    def test_fn_mapper_reducer(self, local_store):
        data = local_store.create_table(TableSpec(name="data"))
        data.put_many([(i, i) for i in range(6)])
        spec = MapReduceSpec(
            FnMapper(lambda k, v: [(v % 2, v)]),
            FnReducer(lambda k, values: sum(values)),
        )
        run_mapreduce(local_store, spec, "data", "out")
        assert dict(local_store.get_table("out").items()) == {0: 0 + 2 + 4, 1: 1 + 3 + 5}

    def test_projection_mapper(self, local_store):
        rows = local_store.create_table(TableSpec(name="rows"))
        rows.put_many(
            [(1, {"city": "NYC", "n": 3}), (2, {"city": "SF", "n": 5}), (3, {"city": "NYC", "n": 2})]
        )
        spec = MapReduceSpec(
            ProjectionMapper("city"),
            FnReducer(lambda k, values: sum(r["n"] for r in values)),
        )
        run_mapreduce(local_store, spec, "rows", "by_city")
        assert dict(local_store.get_table("by_city").items()) == {"NYC": 5, "SF": 5}

    @pytest.mark.parametrize(
        "reducer,expected",
        [
            (SumReducer(), 10),
            (CountReducer(), 4),
            (MinReducer(), 1),
            (MaxReducer(), 4),
            (MeanReducer(), 2.5),
            (CollectReducer(), [1, 2, 3, 4]),
        ],
    )
    def test_standard_reducers(self, local_store, reducer, expected):
        data = local_store.create_table(TableSpec(name="data"))
        data.put_many([(i, i) for i in [1, 2, 3, 4]])
        spec = MapReduceSpec(FnMapper(lambda k, v: [("all", v)]), reducer)
        run_mapreduce(local_store, spec, "data", "out")
        assert local_store.get_table("out").get("all") == expected

    def test_group_aggregate(self, local_store):
        sales = local_store.create_table(TableSpec(name="sales"))
        sales.put_many(
            [(i, {"region": "east" if i % 2 else "west", "amount": i * 10}) for i in range(1, 7)]
        )
        group_aggregate(
            local_store,
            "sales",
            "by_region",
            key_of=lambda k, v: v["region"],
            value_of=lambda k, v: v["amount"],
            reducer=SumReducer(),
            combiner=lambda a, b: a + b,
        )
        out = dict(local_store.get_table("by_region").items())
        assert out == {"east": 10 + 30 + 50, "west": 20 + 40 + 60}


class TestJoin:
    def test_inner_join(self, fast_store):
        users = fast_store.create_table(TableSpec(name="users", n_parts=3))
        users.put_many(
            [(1, {"uid": "u1", "name": "ada"}), (2, {"uid": "u2", "name": "bob"}), (3, {"uid": "u3", "name": "cyd"})]
        )
        orders = fast_store.create_table(TableSpec(name="orders", like="users"))
        orders.put_many(
            [(100, {"uid": "u1", "total": 5}), (101, {"uid": "u1", "total": 7}), (102, {"uid": "u3", "total": 2})]
        )
        join_tables(
            fast_store,
            "users",
            "orders",
            "user_orders",
            left_key=lambda k, v: v["uid"],
            right_key=lambda k, v: v["uid"],
            join=lambda key, user, order: (user["name"], order["total"]),
        )
        # emit overwrites per join key; the reducer emitted both u1 rows
        # under key "u1" — the last lands in the table. Collect variant:
        out = dict(fast_store.get_table("user_orders").items())
        assert set(out) == {"u1", "u3"}
        assert out["u3"] == ("cyd", 2)

    def test_unmatched_rows_dropped(self, local_store):
        left = local_store.create_table(TableSpec(name="l", n_parts=2))
        left.put(1, {"k": "a"})
        right = local_store.create_table(TableSpec(name="r", like="l"))
        right.put(2, {"k": "b"})
        join_tables(
            local_store,
            "l",
            "r",
            "out",
            left_key=lambda k, v: v["k"],
            right_key=lambda k, v: v["k"],
        )
        assert local_store.get_table("out").size() == 0

    def test_mismatched_partitioning_rejected(self, local_store):
        local_store.create_table(TableSpec(name="l", n_parts=2))
        local_store.create_table(TableSpec(name="r", n_parts=3))
        with pytest.raises(JobSpecError):
            join_tables(
                local_store, "l", "r", "out",
                left_key=lambda k, v: v, right_key=lambda k, v: v,
            )

    def test_staging_table_cleaned_up(self, local_store):
        local_store.create_table(TableSpec(name="l", n_parts=2)).put(1, {"k": "x"})
        local_store.create_table(TableSpec(name="r", like="l")).put(2, {"k": "x"})
        join_tables(
            local_store, "l", "r", "out",
            left_key=lambda k, v: v["k"], right_key=lambda k, v: v["k"],
        )
        assert not any(t.startswith("__join_staging") for t in local_store.list_tables())


class TestTopK:
    def test_top_k_by_value(self, fast_store):
        scores = fast_store.create_table(TableSpec(name="scores", n_parts=3))
        scores.put_many((f"p{i}", i * 3 % 17) for i in range(30))
        expected = sorted(scores.items(), key=lambda kv: kv[1], reverse=True)[:5]
        ranked = top_k(fast_store, "scores", 5)
        assert [value for _, value in ranked] == [value for _, value in expected]

    def test_top_k_custom_score(self, local_store):
        rows = local_store.create_table(TableSpec(name="rows"))
        rows.put_many([(i, {"score": -i}) for i in range(10)])
        ranked = top_k(local_store, "rows", 3, score_of=lambda k, v: v["score"])
        assert [v["score"] for _, v in ranked] == [0, -1, -2]

    def test_k_larger_than_table(self, local_store):
        rows = local_store.create_table(TableSpec(name="rows"))
        rows.put_many([(i, i) for i in range(3)])
        assert len(top_k(local_store, "rows", 10)) == 3

    def test_bad_k(self, local_store):
        local_store.create_table(TableSpec(name="rows"))
        with pytest.raises(ValueError):
            top_k(local_store, "rows", 0)
