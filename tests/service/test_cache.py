"""Result cache: epoch matching, invalidation, LRU bounds."""

from __future__ import annotations

from repro.kvstore.api import TableSpec
from repro.kvstore.local import LocalKVStore
from repro.service.cache import ResultCache


def make_store_with(*names):
    store = LocalKVStore()
    for name in names:
        store.create_table(TableSpec(name=name)).put(0, "seed")
    return store


class TestHitAndMiss:
    def test_empty_cache_misses(self):
        store = make_store_with("t")
        cache = ResultCache()
        assert cache.lookup(store, "fp") is None
        assert cache.stats() == {"entries": 0, "hits": 0, "misses": 1}

    def test_put_then_hit(self):
        store = make_store_with("t")
        cache = ResultCache()
        cache.put(store, "fp", ["t"], {"answer": 42})
        assert cache.lookup(store, "fp") == {"answer": 42}
        assert cache.stats()["hits"] == 1

    def test_mutation_invalidates(self):
        store = make_store_with("t")
        cache = ResultCache()
        cache.put(store, "fp", ["t"], "payload")
        store.get_table("t").put(1, "mutant")
        assert cache.lookup(store, "fp") is None
        # and the stale entry is gone, not retried forever
        assert cache.stats()["entries"] == 0

    def test_any_of_several_inputs_invalidates(self):
        store = make_store_with("a", "b")
        cache = ResultCache()
        cache.put(store, "fp", ["a", "b"], "payload")
        store.get_table("b").delete(0)
        assert cache.lookup(store, "fp") is None

    def test_dropped_table_is_a_miss(self):
        store = make_store_with("t")
        cache = ResultCache()
        cache.put(store, "fp", ["t"], "payload")
        store.drop_table("t")
        assert cache.lookup(store, "fp") is None

    def test_unrelated_mutations_do_not_invalidate(self):
        store = make_store_with("t", "other")
        cache = ResultCache()
        cache.put(store, "fp", ["t"], "payload")
        store.get_table("other").put(9, "x")
        assert cache.lookup(store, "fp") == "payload"


class TestLRU:
    def test_capacity_evicts_least_recent(self):
        store = make_store_with("t")
        cache = ResultCache(capacity=2)
        cache.put(store, "a", ["t"], 1)
        cache.put(store, "b", ["t"], 2)
        assert cache.lookup(store, "a") == 1  # refresh a
        cache.put(store, "c", ["t"], 3)  # evicts b
        assert cache.lookup(store, "b") is None
        assert cache.lookup(store, "a") == 1
        assert cache.lookup(store, "c") == 3

    def test_missing_input_table_is_not_cached(self):
        store = make_store_with("t")
        cache = ResultCache()
        cache.put(store, "fp", ["vanished"], "payload")
        assert len(cache) == 0
