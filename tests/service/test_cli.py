"""The ``ripple`` umbrella CLI and the service client commands."""

from __future__ import annotations

import json

import pytest

from repro.kvstore.local import LocalKVStore
from repro.service import FrontDoor, ServiceServer
from repro.service.cli import main as service_main
from repro.tools.ripple import main as ripple_main


class TestUmbrella:
    def test_help_lists_all_subcommands(self, capsys):
        assert ripple_main(["--help"]) == 0
        out = capsys.readouterr().out
        for name in ("inspect", "service", "serve", "submit", "status", "wait",
                     "result", "cancel", "tenants", "apps"):
            assert name in out, f"ripple --help does not mention {name!r}"

    def test_no_args_prints_usage(self, capsys):
        assert ripple_main([]) == 0
        assert "usage: ripple" in capsys.readouterr().out

    def test_unknown_command_fails(self, capsys):
        assert ripple_main(["frobnicate"]) == 2
        assert "unknown command" in capsys.readouterr().err

    def test_inspect_is_wired_through(self, capsys, tmp_path):
        # an empty store dir → inspect's own listing path, proving delegation
        assert ripple_main(["inspect", str(tmp_path / "empty")]) == 0
        assert "(no tables)" in capsys.readouterr().out

    def test_service_group_help(self, capsys):
        with pytest.raises(SystemExit) as info:
            ripple_main(["service", "--help"])
        assert info.value.code == 0
        out = capsys.readouterr().out
        for name in ("serve", "submit", "status", "wait", "result", "cancel",
                     "tenants", "apps"):
            assert name in out


@pytest.fixture
def live_url():
    store = LocalKVStore()
    with ServiceServer(FrontDoor(store)) as server:
        yield server.url
    store.close()


PR_ARGS = ["-p", "n_vertices=30", "-p", "n_edges=90", "-p", "iterations=3"]


class TestClient:
    def test_apps(self, live_url, capsys):
        assert service_main(["apps", "--url", live_url]) == 0
        assert "pagerank" in capsys.readouterr().out

    def test_submit_wait_result_round_trip(self, live_url, capsys):
        code = service_main(
            ["submit", "pagerank", "--url", live_url, "--wait", "--timeout", "60"]
            + PR_ARGS
        )
        captured = capsys.readouterr()
        assert code == 0, captured.err
        payload = json.loads(captured.out)
        assert len(payload["result"]["ranks"]) == 30
        assert "status: done" in captured.err

    def test_submit_then_separate_wait_and_result(self, live_url, capsys):
        assert service_main(["submit", "pagerank", "--url", live_url] + PR_ARGS) == 0
        record = json.loads(capsys.readouterr().out)
        assert service_main(
            ["wait", record["job_id"], "--url", live_url, "--timeout", "60"]
        ) == 0
        capsys.readouterr()
        assert service_main(["result", record["job_id"], "--url", live_url]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["job_id"] == record["job_id"]

    def test_status_all_and_one(self, live_url, capsys):
        service_main(["submit", "pagerank", "--url", live_url] + PR_ARGS)
        record = json.loads(capsys.readouterr().out)
        assert service_main(["status", "--url", live_url]) == 0
        assert record["job_id"] in capsys.readouterr().out
        assert service_main(["status", record["job_id"], "--url", live_url]) == 0

    def test_tenants(self, live_url, capsys):
        service_main(["submit", "pagerank", "--url", live_url] + PR_ARGS)
        capsys.readouterr()
        assert service_main(["tenants", "--url", live_url]) == 0
        assert "public" in capsys.readouterr().out

    def test_cancel_done_job_fails_cleanly(self, live_url, capsys):
        code = service_main(
            ["submit", "pagerank", "--url", live_url, "--wait", "--timeout", "60"]
            + PR_ARGS
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert service_main(["cancel", payload["job_id"], "--url", live_url]) == 1

    def test_bad_submit_reports_error(self, live_url, capsys):
        assert service_main(["submit", "nope", "--url", live_url]) == 1
        assert "unknown app" in capsys.readouterr().out

    def test_bad_param_syntax(self, live_url):
        with pytest.raises(SystemExit):
            service_main(["submit", "pagerank", "--url", live_url, "-p", "oops"])


ALL_APPS = {
    "pagerank": (["-p", "n_vertices=30", "-p", "n_edges=90", "-p", "iterations=3"],
                 lambda r: len(r["ranks"]) == 30),
    "sssp": (["-p", "n_vertices=30", "-p", "n_edges=60", "-p", "source=0"],
             lambda r: r["distances"]["0"] == 0),
    "summa": (["-p", "m=6", "-p", "n=6", "-p", "inner=6"],
              lambda r: len(r["c"]) == 6 and len(r["c"][0]) == 6),
    "kmeans": (["-p", "n_points=40", "-p", "k=3"],
               lambda r: len(r["centroids"]) == 3),
}


@pytest.mark.parametrize("runtime", ["threaded", "process"])
def test_all_apps_round_trip_on_runtime(runtime, capsys):
    """submit/wait/result works for every catalog app, live over HTTP,
    on both the threaded and the process worker runtime."""
    from repro.kvstore.partitioned import PartitionedKVStore

    store = PartitionedKVStore(n_partitions=4)
    front_door = FrontDoor(store, runtime=runtime, max_concurrent=1)
    with ServiceServer(front_door) as server:
        for app, (args, check) in ALL_APPS.items():
            code = service_main(
                ["submit", app, "--url", server.url, "--wait", "--timeout", "180"]
                + args
            )
            captured = capsys.readouterr()
            assert code == 0, f"{app} on {runtime}: {captured.err}"
            payload = json.loads(captured.out)
            assert check(payload["result"]), f"{app} on {runtime}: {payload}"
            # the record is fetchable afterwards too
            assert service_main(
                ["result", payload["job_id"], "--url", server.url]
            ) == 0
            capsys.readouterr()
    store.close()
