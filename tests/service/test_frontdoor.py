"""FrontDoor end-to-end: lifecycle, quotas, caching, progress, shutdown."""

from __future__ import annotations

import json
import threading

import pytest

from repro.errors import (
    BadRequestError,
    QuotaExceededError,
    ServiceError,
    UnknownServiceJobError,
)
from repro.ebsp.job import Compute, ComputeContext, Job
from repro.ebsp.loaders import DictStateLoader
from repro.ebsp.scheduler import JobScheduler
from repro.kvstore.local import LocalKVStore
from repro.service import (
    FrontDoor,
    JobRequest,
    JobStatus,
    TenantQuota,
    default_catalog,
)
from repro.service.catalog import PreparedJob

PR_PARAMS = {"n_vertices": 40, "n_edges": 150, "iterations": 4}


# -- a gate app: blocks until the test releases it --------------------------------
class _GateCompute(Compute):
    def __init__(self, gate: threading.Event):
        self._gate = gate

    def compute(self, ctx: ComputeContext) -> bool:
        assert self._gate.wait(30), "test forgot to open the gate"
        ctx.write_state(0, "ran")
        return False


class _GateJob(Job):
    def __init__(self, table: str, gate: threading.Event):
        self._table = table
        self._gate = gate

    def state_table_names(self):
        return [self._table]

    def get_compute(self) -> Compute:
        return _GateCompute(self._gate)

    def loaders(self):
        return [DictStateLoader(0, {0: "pending"}, enable=True)]


def catalog_with_gate(gates):
    """The default catalog plus a test-only app that blocks on an event."""
    catalog = default_catalog()

    def build(store, request):
        name = request.params["name"]
        gate = gates.setdefault(name, threading.Event())
        table = f"gate_{name}"
        return PreparedJob(
            job=_GateJob(table, gate),
            engine_kwargs={"synchronize": True},
            input_tables=[table],
            collect=lambda store, result: {"steps": result.steps, "name": name},
        )

    catalog.register("gate", build, required={"name": str}, optional={})
    return catalog


@pytest.fixture
def store():
    instance = LocalKVStore()
    yield instance
    instance.close()


class TestLifecycle:
    def test_pagerank_round_trip(self, store):
        with FrontDoor(store) as fd:
            record = fd.submit(JobRequest(app="pagerank", params=PR_PARAMS))
            assert record.wait(60)
            assert record.status is JobStatus.DONE
            assert not record.cached
            assert len(record.payload["ranks"]) == PR_PARAMS["n_vertices"]
            assert abs(sum(record.payload["ranks"].values()) - 1.0) < 1e-6
            assert record.steps_seen == PR_PARAMS["iterations"] + 1
            assert record.last_step["step"] == PR_PARAMS["iterations"]

    def test_status_events_in_order(self, store):
        with FrontDoor(store) as fd:
            record = fd.submit(JobRequest(app="pagerank", params=PR_PARAMS))
            record.wait(60)
            events = fd.board.events_since(record.job_id)
            statuses = [
                e["data"]["status"] for e in events if e["kind"] == "status"
            ]
            assert statuses == ["queued", "admitted", "running", "done"]
            steps = [e["data"]["step"] for e in events if e["kind"] == "step"]
            assert steps == list(range(PR_PARAMS["iterations"] + 1))

    def test_bad_requests_fail_at_submit(self, store):
        with FrontDoor(store) as fd:
            with pytest.raises(BadRequestError, match="unknown app"):
                fd.submit(JobRequest(app="nope"))
            with pytest.raises(BadRequestError, match="unknown params"):
                fd.submit(JobRequest(app="pagerank", params={"bogus": 1}))
            with pytest.raises(BadRequestError, match="missing params"):
                fd.submit(JobRequest(app="pagerank", params={}))
            assert fd.jobs() == []  # nothing leaked into the registry

    def test_semantic_failure_is_async_and_releases_the_slot(self, store):
        # source out of range passes the schema but fails in the builder
        with FrontDoor(store) as fd:
            record = fd.submit(
                JobRequest(
                    app="sssp",
                    params={"n_vertices": 10, "n_edges": 5, "source": 99},
                )
            )
            assert record.wait(30)
            assert record.status is JobStatus.FAILED
            assert "source" in record.error
            # the tenant's running slot was released
            follow_up = fd.submit(JobRequest(app="pagerank", params=PR_PARAMS))
            assert follow_up.wait(60)
            assert follow_up.status is JobStatus.DONE

    def test_sssp_second_source_does_not_see_stale_state(self, store):
        """Re-running SSSP over the same graph with a new source must
        start from fresh annotations, not the previous run's converged
        dist/neighbor_dists (the tables share a name by design)."""
        params = {"n_vertices": 24, "n_edges": 60, "seed": 3}
        with FrontDoor(store) as fd:
            first = fd.submit(JobRequest(app="sssp", params={**params, "source": 0}))
            assert first.wait(60) and first.status is JobStatus.DONE
            second = fd.submit(JobRequest(app="sssp", params={**params, "source": 7}))
            assert second.wait(60) and second.status is JobStatus.DONE
        assert second.payload["distances"]["7"] == 0
        # byte-identical to a service that never saw source 0
        fresh = LocalKVStore()
        with FrontDoor(fresh) as fd:
            alone = fd.submit(JobRequest(app="sssp", params={**params, "source": 7}))
            assert alone.wait(60) and alone.status is JobStatus.DONE
        fresh.close()
        assert second.payload["distances"] == alone.payload["distances"]

    def test_result_raises_until_done(self, store):
        gates = {}
        with FrontDoor(store, catalog=catalog_with_gate(gates)) as fd:
            record = fd.submit(JobRequest(app="gate", params={"name": "r1"}))
            with pytest.raises(ServiceError):
                fd.result(record.job_id)
            gates["r1"].set()
            record.wait(30)
            assert fd.result(record.job_id)["name"] == "r1"


class TestQuotas:
    def test_over_quota_jobs_queue_then_run(self, store):
        gates = {}
        quotas = {"t": TenantQuota(max_running=1, max_queued=2)}
        with FrontDoor(
            store, catalog=catalog_with_gate(gates), quotas=quotas, max_concurrent=4
        ) as fd:
            first = fd.submit(
                JobRequest(app="gate", tenant="t", params={"name": "q1"})
            )
            second = fd.submit(
                JobRequest(app="gate", tenant="t", params={"name": "q2"})
            )
            assert second.status is JobStatus.QUEUED
            assert fd.tenants()["t"] == {
                **fd.tenants()["t"], "running": 1, "queued": 1,
            }
            # q2's builder only runs at dispatch; pre-seed its gate open
            gates.setdefault("q2", threading.Event()).set()
            gates["q1"].set()
            assert first.wait(30) and first.status is JobStatus.DONE
            assert second.wait(30)
            assert second.status is JobStatus.DONE

    def test_queue_quota_rejects_with_retry_after(self, store):
        gates = {}
        quotas = {"t": TenantQuota(max_running=1, max_queued=1)}
        with FrontDoor(store, catalog=catalog_with_gate(gates), quotas=quotas) as fd:
            fd.submit(JobRequest(app="gate", tenant="t", params={"name": "b1"}))
            fd.submit(JobRequest(app="gate", tenant="t", params={"name": "b2"}))
            with pytest.raises(QuotaExceededError) as info:
                fd.submit(JobRequest(app="gate", tenant="t", params={"name": "b3"}))
            assert info.value.retry_after >= 1.0
            for gate in gates.values():
                gate.set()

    def test_dispatch_failure_drains_jobs_queued_behind_it(self, store):
        """A job whose builder fails at dispatch must release its slot
        AND wake the queue — jobs behind it would otherwise stay QUEUED
        forever when no other completion event arrives."""
        gates = {}
        quotas = {"t": TenantQuota(max_running=1, max_queued=4)}
        with FrontDoor(store, catalog=catalog_with_gate(gates), quotas=quotas) as fd:
            first = fd.submit(JobRequest(app="gate", tenant="t", params={"name": "d1"}))
            # passes schema validation, fails in the builder at dispatch
            doomed = fd.submit(
                JobRequest(
                    app="sssp", tenant="t",
                    params={"n_vertices": 10, "n_edges": 5, "source": 99},
                )
            )
            behind = fd.submit(JobRequest(app="gate", tenant="t", params={"name": "d2"}))
            assert doomed.status is JobStatus.QUEUED
            assert behind.status is JobStatus.QUEUED
            gates.setdefault("d2", threading.Event()).set()
            gates["d1"].set()
            assert first.wait(30) and first.status is JobStatus.DONE
            assert doomed.wait(30) and doomed.status is JobStatus.FAILED
            assert behind.wait(30) and behind.status is JobStatus.DONE

    def test_tenants_do_not_block_each_other(self, store):
        gates = {}
        quotas = {"busy": TenantQuota(max_running=1)}
        with FrontDoor(
            store, catalog=catalog_with_gate(gates), quotas=quotas, max_concurrent=4
        ) as fd:
            fd.submit(JobRequest(app="gate", tenant="busy", params={"name": "h1"}))
            other = fd.submit(JobRequest(app="pagerank", tenant="idle", params=PR_PARAMS))
            assert other.wait(60)
            assert other.status is JobStatus.DONE
            gates["h1"].set()


class TestCancellation:
    def test_cancel_queued_job(self, store):
        gates = {}
        quotas = {"t": TenantQuota(max_running=1, max_queued=2)}
        with FrontDoor(store, catalog=catalog_with_gate(gates), quotas=quotas) as fd:
            running = fd.submit(JobRequest(app="gate", tenant="t", params={"name": "c1"}))
            queued = fd.submit(JobRequest(app="gate", tenant="t", params={"name": "c2"}))
            assert fd.cancel(queued.job_id) is True
            assert queued.status is JobStatus.CANCELLED
            gates["c1"].set()
            assert running.wait(30) and running.status is JobStatus.DONE
            # the cancelled job never ran
            assert "c2" not in gates or not gates["c2"].is_set()

    def test_cancel_running_job_is_refused(self, store):
        gates = {}
        with FrontDoor(store, catalog=catalog_with_gate(gates)) as fd:
            record = fd.submit(JobRequest(app="gate", params={"name": "c3"}))
            # wait until it is actually running
            for _ in range(100):
                if record.status is JobStatus.RUNNING:
                    break
                threading.Event().wait(0.05)
            assert fd.cancel(record.job_id) is False
            gates["c3"].set()
            record.wait(30)


class TestCaching:
    def test_repeat_submission_hits(self, store):
        with FrontDoor(store) as fd:
            first = fd.submit(JobRequest(app="pagerank", tenant="a", params=PR_PARAMS))
            first.wait(60)
            second = fd.submit(JobRequest(app="pagerank", tenant="b", params=PR_PARAMS))
            assert second.status is JobStatus.DONE  # immediately
            assert second.cached
            assert json.dumps(second.payload, sort_keys=True) == json.dumps(
                first.payload, sort_keys=True
            )
            assert fd.cache_stats()["hits"] == 1

    def test_table_mutation_invalidates(self, store):
        with FrontDoor(store) as fd:
            first = fd.submit(JobRequest(app="pagerank", params=PR_PARAMS))
            first.wait(60)
            table = store.get_table(first.payload["table"])
            table.put(0, table.get(0))  # touch: epoch bump, same data
            second = fd.submit(JobRequest(app="pagerank", params=PR_PARAMS))
            assert not second.cached
            second.wait(60)
            assert second.status is JobStatus.DONE

    def test_different_params_do_not_hit(self, store):
        with FrontDoor(store) as fd:
            fd.submit(JobRequest(app="pagerank", params=PR_PARAMS)).wait(60)
            other = dict(PR_PARAMS, iterations=5)
            second = fd.submit(JobRequest(app="pagerank", params=other))
            assert not second.cached
            second.wait(60)

    def test_matches_direct_scheduler_run(self, store):
        """The front door adds management, not computation: payloads are
        byte-identical to collecting a direct scheduler run."""
        with FrontDoor(store) as fd:
            record = fd.submit(JobRequest(app="pagerank", params=PR_PARAMS))
            record.wait(60)
            service_payload = json.dumps(record.payload, sort_keys=True)

        direct_store = LocalKVStore()
        catalog = default_catalog()
        prepared = catalog.prepare(
            direct_store, JobRequest(app="pagerank", params=PR_PARAMS)
        )
        with JobScheduler(direct_store) as scheduler:
            handle = scheduler.submit(prepared.job, **prepared.engine_kwargs)
            handle.wait(60)
        direct_payload = json.dumps(
            prepared.collect(direct_store, handle.result), sort_keys=True
        )
        assert service_payload == direct_payload


class TestRetention:
    def test_terminal_jobs_evicted_beyond_cap(self, store):
        with FrontDoor(store, retain_jobs=2) as fd:
            records = []
            for i in range(4):
                record = fd.submit(
                    JobRequest(app="pagerank", params={**PR_PARAMS, "iterations": i + 1})
                )
                assert record.wait(60) and record.status is JobStatus.DONE
                records.append(record)
            # the two oldest lose record, event log, and scheduler handle
            assert {r.job_id for r in fd.jobs()} == {r.job_id for r in records[2:]}
            with pytest.raises(UnknownServiceJobError):
                fd.job(records[0].job_id)
            assert fd.board.events_since(records[0].job_id) == []
            assert len(fd._scheduler.jobs()) <= 2

    def test_retained_jobs_stay_queryable(self, store):
        with FrontDoor(store, retain_jobs=8) as fd:
            record = fd.submit(JobRequest(app="pagerank", params=PR_PARAMS))
            assert record.wait(60)
            assert fd.result(record.job_id) == record.payload
            assert fd.board.events_since(record.job_id) != []

    def test_retain_jobs_must_be_positive(self, store):
        with pytest.raises(ValueError, match="retain_jobs"):
            FrontDoor(store, retain_jobs=0)


class TestShutdown:
    def test_close_cancels_queued_and_drains_running(self, store):
        gates = {}
        quotas = {"t": TenantQuota(max_running=1, max_queued=2)}
        fd = FrontDoor(store, catalog=catalog_with_gate(gates), quotas=quotas)
        running = fd.submit(JobRequest(app="gate", tenant="t", params={"name": "s1"}))
        queued = fd.submit(JobRequest(app="gate", tenant="t", params={"name": "s2"}))
        gates["s1"].set()
        assert fd.close(timeout=30) is True
        assert running.status is JobStatus.DONE
        assert queued.status is JobStatus.CANCELLED

    def test_submit_after_close_raises(self, store):
        fd = FrontDoor(store)
        fd.close()
        with pytest.raises(ServiceError, match="shut down"):
            fd.submit(JobRequest(app="pagerank", params=PR_PARAMS))

    def test_close_is_idempotent(self, store):
        fd = FrontDoor(store)
        assert fd.close() is True
        assert fd.close() is True


def test_metrics_are_labeled_per_tenant(store):
    with FrontDoor(store) as fd:
        fd.submit(JobRequest(app="pagerank", tenant="alice", params=PR_PARAMS)).wait(60)
        fd.submit(JobRequest(app="pagerank", tenant="bob", params=PR_PARAMS))
        snapshot = fd.metrics().snapshot()
        assert snapshot["service.jobs_submitted{tenant=alice}"] == 1
        assert snapshot["service.jobs_submitted{tenant=bob}"] == 1
        assert snapshot["service.cache_hits{tenant=bob}"] == 1
        assert snapshot["service.jobs_done{tenant=alice}"] == 1
