"""Admission control: quotas, aging, backpressure — with a fake clock."""

from __future__ import annotations

import pytest

from repro.errors import QuotaExceededError
from repro.service.admission import AdmissionController, TenantQuota


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def clock():
    return FakeClock()


def controller(clock, **kwargs):
    kwargs.setdefault("default_quota", TenantQuota(max_running=1, max_queued=2))
    return AdmissionController(clock=clock, **kwargs)


class TestQuotas:
    def test_first_job_runs_immediately(self, clock):
        ctl = controller(clock)
        assert ctl.offer("j1", "a", 100) is True

    def test_running_cap_queues_the_next(self, clock):
        ctl = controller(clock)
        assert ctl.offer("j1", "a", 100) is True
        assert ctl.offer("j2", "a", 100) is False
        assert ctl.queue_depth() == 1

    def test_release_lets_the_queue_drain(self, clock):
        ctl = controller(clock)
        ctl.offer("j1", "a", 100)
        ctl.offer("j2", "a", 100)
        assert ctl.drain() == []  # still at the running cap
        ctl.release("a")
        assert ctl.drain() == ["j2"]

    def test_queue_cap_rejects_with_retry_after(self, clock):
        ctl = controller(clock)
        ctl.offer("j1", "a", 100)
        ctl.offer("j2", "a", 100)
        ctl.offer("j3", "a", 100)
        with pytest.raises(QuotaExceededError) as info:
            ctl.offer("j4", "a", 100)
        assert info.value.retry_after >= 1.0

    def test_global_queue_cap(self, clock):
        ctl = controller(clock, max_queue_depth=1)
        ctl.offer("j1", "a", 100)
        ctl.offer("j2", "a", 100)
        with pytest.raises(QuotaExceededError, match="queue is full"):
            ctl.offer("j3", "b", 100)

    def test_tenants_are_isolated(self, clock):
        ctl = controller(clock)
        assert ctl.offer("j1", "a", 100) is True
        assert ctl.offer("j2", "b", 100) is True  # b's own running quota

    def test_per_tenant_quota_override(self, clock):
        ctl = controller(clock, quotas={"big": TenantQuota(max_running=3)})
        assert ctl.offer("j1", "big", 100) is True
        assert ctl.offer("j2", "big", 100) is True
        assert ctl.offer("j3", "big", 100) is True


class TestStepBudget:
    def test_budget_exhaustion_queues(self, clock):
        quota = TenantQuota(max_running=2, max_queued=4, step_budget=100, window_seconds=60)
        ctl = controller(clock, default_quota=quota)
        assert ctl.offer("j1", "a", 100) is True
        ctl.release("a", part_steps=150)  # blew the window budget
        assert ctl.offer("j2", "a", 100) is False

    def test_budget_recovers_after_the_window(self, clock):
        quota = TenantQuota(max_running=2, max_queued=4, step_budget=100, window_seconds=60)
        ctl = controller(clock, default_quota=quota)
        ctl.offer("j1", "a", 100)
        ctl.release("a", part_steps=150)
        assert ctl.offer("j2", "a", 100) is False
        clock.advance(61.0)
        assert ctl.drain() == ["j2"]

    def test_unmetered_by_default(self, clock):
        ctl = controller(clock)
        ctl.offer("j1", "a", 100)
        ctl.release("a", part_steps=10**9)
        assert ctl.offer("j2", "a", 100) is True


class TestPriorityAndAging:
    def test_lower_priority_value_drains_first(self, clock):
        ctl = controller(clock)
        ctl.offer("run", "a", 100)
        ctl.offer("low", "a", 500)
        ctl.offer("high", "a", 10)
        ctl.release("a")
        assert ctl.drain() == ["high"]

    def test_aging_prevents_starvation(self, clock):
        ctl = controller(clock, aging_rate=10.0)
        ctl.offer("run", "a", 100)
        ctl.offer("old-low", "a", 500)
        clock.advance(60.0)  # ages 600 priority points
        ctl.offer("fresh-high", "a", 10)
        ctl.release("a")
        assert ctl.drain() == ["old-low"]

    def test_drain_respects_quota_per_tenant(self, clock):
        ctl = controller(clock, default_quota=TenantQuota(max_running=1, max_queued=4))
        ctl.offer("a1", "a", 100)
        ctl.offer("a2", "a", 100)
        ctl.offer("b1", "b", 100)  # queued: a1 runs, but b is free... no —
        # b1 went to the queue because the queue was non-empty; drain picks it up
        assert "b1" in ctl.drain()
        assert ctl.drain() == []


class TestWithdraw:
    def test_withdraw_removes_and_frees_the_slot(self, clock):
        ctl = controller(clock)
        ctl.offer("j1", "a", 100)
        ctl.offer("j2", "a", 100)
        ctl.offer("j3", "a", 100)
        assert ctl.withdraw("j2") is True
        assert ctl.withdraw("j2") is False
        # the freed queue slot is usable again
        assert ctl.offer("j4", "a", 100) is False
        assert ctl.queue_depth() == 2


def test_tenants_snapshot(clock):
    ctl = controller(clock, quotas={"vip": TenantQuota(max_running=4, step_budget=10)})
    ctl.offer("j1", "a", 100)
    ctl.offer("j2", "a", 100)
    snap = ctl.tenants()
    assert snap["a"]["running"] == 1
    assert snap["a"]["queued"] == 1
    assert snap["vip"]["quota"]["max_running"] == 4
    assert snap["vip"]["quota"]["step_budget"] == 10
