"""HTTP surface: routing, status codes, long-poll, and SSE."""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.kvstore.local import LocalKVStore
from repro.service import FrontDoor, ServiceServer, TenantQuota
from tests.service.test_frontdoor import PR_PARAMS, catalog_with_gate


def call(base, method, path, body=None):
    request = urllib.request.Request(
        base + path,
        data=None if body is None else json.dumps(body).encode(),
        method=method,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=60) as response:
            return response.status, json.loads(response.read() or b"{}"), response.headers
    except urllib.error.HTTPError as exc:
        raw = exc.read()
        return exc.code, json.loads(raw) if raw else {}, exc.headers


@pytest.fixture
def service():
    gates = {}
    store = LocalKVStore()
    front_door = FrontDoor(
        store,
        catalog=catalog_with_gate(gates),
        quotas={"small": TenantQuota(max_running=1, max_queued=1)},
        max_concurrent=4,
    )
    with ServiceServer(front_door) as server:
        yield server.url, gates, store
        for gate in gates.values():
            gate.set()
    store.close()


def submit_and_wait(base, body, timeout=60.0):
    code, record, _ = call(base, "POST", "/v1/jobs", body)
    assert code == 202, record
    job_id = record["job_id"]
    cursor, status = 0, record["status"]
    while status not in ("done", "failed", "cancelled"):
        _, payload, _ = call(
            base, "GET", f"/v1/jobs/{job_id}/events?since={cursor}&timeout=5"
        )
        for event in payload["events"]:
            cursor = event["seq"] + 1
            if event["kind"] == "status":
                status = event["data"]["status"]
    return job_id, status


class TestBasics:
    def test_healthz(self, service):
        base, _, _ = service
        assert call(base, "GET", "/healthz")[1] == {"ok": True}

    def test_apps_lists_the_catalog(self, service):
        base, _, _ = service
        _, payload, _ = call(base, "GET", "/v1/apps")
        assert set(payload["apps"]) >= {"pagerank", "sssp", "summa", "kmeans"}

    def test_unknown_route_404(self, service):
        base, _, _ = service
        assert call(base, "GET", "/v1/nope")[0] == 404

    def test_unknown_job_404(self, service):
        base, _, _ = service
        assert call(base, "GET", "/v1/jobs/deadbeef")[0] == 404
        assert call(base, "POST", "/v1/jobs/deadbeef/cancel")[0] == 404

    def test_bad_spec_400(self, service):
        base, _, _ = service
        assert call(base, "POST", "/v1/jobs", {"app": "nope"})[0] == 400
        assert call(base, "POST", "/v1/jobs", {"app": "pagerank", "params": {"x": 1}})[0] == 400

    def test_malformed_json_400(self, service):
        base, _, _ = service
        request = urllib.request.Request(
            base + "/v1/jobs", data=b"{not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request, timeout=10)
        assert info.value.code == 400


class TestJobs:
    def test_submit_run_result(self, service):
        base, _, _ = service
        job_id, status = submit_and_wait(
            base, {"app": "pagerank", "params": PR_PARAMS}
        )
        assert status == "done"
        code, payload, _ = call(base, "GET", f"/v1/jobs/{job_id}/result")
        assert code == 200
        assert len(payload["result"]["ranks"]) == PR_PARAMS["n_vertices"]
        _, listing, _ = call(base, "GET", "/v1/jobs")
        assert any(j["job_id"] == job_id for j in listing["jobs"])

    def test_result_before_done_409(self, service):
        base, gates, _ = service
        code, record, _ = call(
            base, "POST", "/v1/jobs", {"app": "gate", "params": {"name": "w1"}}
        )
        assert code == 202
        code, _, _ = call(base, "GET", f"/v1/jobs/{record['job_id']}/result")
        assert code == 409
        gates["w1"].set()

    def test_backpressure_429_with_retry_after(self, service):
        base, gates, _ = service
        body = lambda n: {"app": "gate", "tenant": "small", "params": {"name": n}}
        assert call(base, "POST", "/v1/jobs", body("p1"))[0] == 202
        assert call(base, "POST", "/v1/jobs", body("p2"))[0] == 202
        code, payload, headers = call(base, "POST", "/v1/jobs", body("p3"))
        assert code == 429
        assert int(headers["Retry-After"]) >= 1
        # p2 is still queued, so its builder (which makes the gate)
        # hasn't run; pre-seed an already-open gate for it
        gates.setdefault("p2", threading.Event()).set()
        gates["p1"].set()

    def test_cancel_queued_job(self, service):
        base, gates, _ = service
        body = lambda n: {"app": "gate", "tenant": "small", "params": {"name": n}}
        call(base, "POST", "/v1/jobs", body("k1"))
        _, queued, _ = call(base, "POST", "/v1/jobs", body("k2"))
        code, payload, _ = call(base, "POST", f"/v1/jobs/{queued['job_id']}/cancel")
        assert code == 200 and payload["cancelled"] is True
        gates["k1"].set()

    def test_cached_repeat(self, service):
        base, _, _ = service
        submit_and_wait(base, {"app": "pagerank", "params": PR_PARAMS})
        code, record, _ = call(
            base, "POST", "/v1/jobs", {"app": "pagerank", "params": PR_PARAMS}
        )
        assert code == 202
        assert record["status"] == "done" and record["cached"] is True
        _, stats, _ = call(base, "GET", "/v1/cache")
        assert stats["hits"] >= 1


class TestStreaming:
    def test_long_poll_blocks_until_events(self, service):
        base, gates, _ = service
        _, record, _ = call(
            base, "POST", "/v1/jobs", {"app": "gate", "params": {"name": "lp1"}}
        )
        job_id = record["job_id"]
        # drain what exists, then long-poll for the completion events
        _, payload, _ = call(base, "GET", f"/v1/jobs/{job_id}/events?since=0")
        cursor = payload["events"][-1]["seq"] + 1 if payload["events"] else 0
        release = threading.Timer(0.3, gates["lp1"].set)
        release.start()
        try:
            _, payload, _ = call(
                base, "GET", f"/v1/jobs/{job_id}/events?since={cursor}&timeout=20"
            )
            assert payload["events"], "long-poll returned empty despite completion"
        finally:
            release.join()

    def test_sse_stream_ends_at_terminal_status(self, service):
        base, gates, _ = service
        _, record, _ = call(
            base, "POST", "/v1/jobs", {"app": "gate", "params": {"name": "sse1"}}
        )
        job_id = record["job_id"]
        gates["sse1"].set()
        request = urllib.request.Request(f"{base}/v1/jobs/{job_id}/stream?since=0")
        events = []
        with urllib.request.urlopen(request, timeout=60) as response:
            assert response.headers["Content-Type"] == "text/event-stream"
            for line in response:
                line = line.decode().strip()
                if line.startswith("data: "):
                    events.append(json.loads(line[len("data: "):]))
        statuses = [
            e["data"]["status"] for e in events if e["kind"] == "status"
        ]
        assert statuses[-1] == "done"
        assert [e["seq"] for e in events] == sorted(e["seq"] for e in events)

    def test_sse_for_unknown_job_is_404(self, service):
        base, _, _ = service
        assert call(base, "GET", "/v1/jobs/deadbeef/stream")[0] == 404


class TestOps:
    def test_tenants_snapshot(self, service):
        base, gates, _ = service
        call(base, "POST", "/v1/jobs",
             {"app": "gate", "tenant": "small", "params": {"name": "t1"}})
        _, payload, _ = call(base, "GET", "/v1/tenants")
        assert payload["tenants"]["small"]["running"] == 1
        gates["t1"].set()

    def test_metrics_dump(self, service):
        base, _, _ = service
        submit_and_wait(base, {"app": "pagerank", "params": PR_PARAMS})
        _, payload, _ = call(base, "GET", "/v1/metrics")
        assert "service.jobs_submitted{tenant=public}" in payload
        assert "service.queue_depth" in payload
