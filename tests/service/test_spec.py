"""JobRequest validation, wire round-trip, and fingerprint semantics."""

from __future__ import annotations

import pytest

from repro.errors import BadRequestError
from repro.service.spec import ALLOWED_ENGINE_OPTIONS, JobRequest, JobStatus


class TestValidation:
    def test_minimal_request_is_valid(self):
        JobRequest(app="pagerank").validate()

    def test_empty_app_rejected(self):
        with pytest.raises(BadRequestError):
            JobRequest(app="").validate()

    @pytest.mark.parametrize("tenant", ["", "a b", "x" * 65, "sla$h"])
    def test_bad_tenant_rejected(self, tenant):
        with pytest.raises(BadRequestError):
            JobRequest(app="a", tenant=tenant).validate()

    @pytest.mark.parametrize("priority", [-1, 1001, 1.5, True])
    def test_bad_priority_rejected(self, priority):
        with pytest.raises(BadRequestError):
            JobRequest(app="a", priority=priority).validate()

    def test_unknown_engine_option_rejected(self):
        with pytest.raises(BadRequestError, match="not allowed"):
            JobRequest(app="a", engine={"failure_injector": "x"}).validate()

    def test_engine_type_mismatch_rejected(self):
        with pytest.raises(BadRequestError):
            JobRequest(app="a", engine={"max_steps": "ten"}).validate()
        with pytest.raises(BadRequestError):
            JobRequest(app="a", engine={"max_steps": True}).validate()

    def test_all_whitelisted_options_accepted(self):
        engine = {
            name: (3 if kind is int else True)
            for name, kind in ALLOWED_ENGINE_OPTIONS.items()
        }
        JobRequest(app="a", engine=engine).validate()

    def test_unserializable_params_rejected(self):
        with pytest.raises(BadRequestError):
            JobRequest(app="a", params={"x": object()}).validate()


class TestWire:
    def test_round_trip(self):
        request = JobRequest(
            app="sssp", tenant="team-a", params={"n_vertices": 10, "n_edges": 5},
            engine={"synchronize": False}, priority=7,
        )
        assert JobRequest.from_wire(request.to_wire()) == request

    def test_missing_app_rejected(self):
        with pytest.raises(BadRequestError, match="missing 'app'"):
            JobRequest.from_wire({"tenant": "a"})

    def test_unknown_field_rejected(self):
        with pytest.raises(BadRequestError, match="unknown request fields"):
            JobRequest.from_wire({"app": "a", "bogus": 1})

    def test_non_object_rejected(self):
        with pytest.raises(BadRequestError):
            JobRequest.from_wire([1, 2])


class TestFingerprint:
    def test_semantically_equal_specs_agree(self):
        a = JobRequest(app="pr", params={"x": 1, "y": 2})
        b = JobRequest(app="pr", params={"y": 2, "x": 1})
        assert a.fingerprint() == b.fingerprint()

    def test_tenant_and_priority_are_excluded(self):
        a = JobRequest(app="pr", tenant="alice", priority=1, params={"x": 1})
        b = JobRequest(app="pr", tenant="bob", priority=900, params={"x": 1})
        assert a.fingerprint() == b.fingerprint()

    def test_params_and_engine_are_included(self):
        base = JobRequest(app="pr", params={"x": 1})
        assert base.fingerprint() != JobRequest(app="pr", params={"x": 2}).fingerprint()
        assert (
            base.fingerprint()
            != JobRequest(app="pr", params={"x": 1}, engine={"max_steps": 3}).fingerprint()
        )


def test_terminal_statuses():
    assert JobStatus.DONE.terminal
    assert JobStatus.FAILED.terminal
    assert JobStatus.CANCELLED.terminal
    assert not JobStatus.QUEUED.terminal
    assert not JobStatus.ADMITTED.terminal
    assert not JobStatus.RUNNING.terminal
