"""Every example script must run clean (small arguments where supported).

Examples are documentation that executes; this keeps them from rotting.
"""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

CASES = [
    ("quickstart.py", []),
    ("pagerank_web_ranking.py", ["300", "3000"]),
    ("summa_matrix_multiply.py", ["60"]),
    ("incremental_shortest_paths.py", ["200", "1500"]),
    ("pregel_social_circles.py", []),
    ("kmeans_clustering.py", ["150", "3"]),
    ("analytics_pipeline.py", []),
]


@pytest.mark.parametrize("script,args", CASES, ids=[c[0] for c in CASES])
def test_example_runs_clean(script, args):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, (
        f"{script} failed:\nstdout:\n{completed.stdout}\nstderr:\n{completed.stderr}"
    )
    assert completed.stdout.strip(), f"{script} printed nothing"


def test_example_inventory_matches_directory():
    """Every example on disk is exercised above (no forgotten scripts)."""
    on_disk = {p.name for p in EXAMPLES.glob("*.py")}
    covered = {script for script, _ in CASES}
    assert on_disk == covered
