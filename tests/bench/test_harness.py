"""The benchmark harness utilities."""

from __future__ import annotations

import math

import pytest

from repro.bench.harness import TrialStats, bench_scale, bench_trials, format_table, run_trials


class TestTrialStats:
    def test_mean_and_stddev(self):
        stats = TrialStats((1.0, 2.0, 3.0))
        assert stats.mean == 2.0
        assert stats.stddev == pytest.approx(1.0)  # sample stddev
        assert stats.n == 3

    def test_single_trial_no_stddev(self):
        stats = TrialStats((5.0,))
        assert stats.stddev == 0.0

    def test_str_is_paper_style(self):
        assert str(TrialStats((28.1, 28.9))) == "28.50 ± 0.57"


class TestRunTrials:
    def test_times_each_trial(self):
        calls = {"n": 0}

        def work():
            calls["n"] += 1

        stats = run_trials(work, trials=4)
        assert calls["n"] == 4
        assert stats.n == 4
        assert all(v >= 0 for v in stats.values)

    def test_setup_untimed_value_passed(self):
        received = []

        def setup():
            return "fixture"

        def work(arg):
            received.append(arg)

        run_trials(work, trials=2, setup=setup)
        assert received == ["fixture", "fixture"]


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["A", "Blong"], [[1, 2], [333, 4]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "A" in lines[1] and "Blong" in lines[1]
        assert set(lines[2]) <= {"-", "+"}
        # all rows share the same width
        assert len({len(line) for line in lines[1:]}) <= 2


class TestEnvKnobs:
    def test_scale_default(self, monkeypatch):
        monkeypatch.delenv("RIPPLE_BENCH_SCALE", raising=False)
        assert bench_scale() == 1.0

    def test_scale_parse(self, monkeypatch):
        monkeypatch.setenv("RIPPLE_BENCH_SCALE", "8")
        assert bench_scale() == 8.0

    def test_scale_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("RIPPLE_BENCH_SCALE", "huge")
        with pytest.raises(ValueError):
            bench_scale()
        monkeypatch.setenv("RIPPLE_BENCH_SCALE", "-1")
        with pytest.raises(ValueError):
            bench_scale()

    def test_trials_default_and_override(self, monkeypatch):
        monkeypatch.delenv("RIPPLE_BENCH_TRIALS", raising=False)
        assert bench_trials(7) == 7
        monkeypatch.setenv("RIPPLE_BENCH_TRIALS", "11")
        assert bench_trials(7) == 11

    def test_trials_rejects_nonpositive(self, monkeypatch):
        monkeypatch.setenv("RIPPLE_BENCH_TRIALS", "0")
        with pytest.raises(ValueError):
            bench_trials(3)


class TestExperimentsSmoke:
    """The experiment runners at postage-stamp scale."""

    def test_table1_rows(self):
        from repro.bench.experiments import run_table1

        rows = run_table1(scale=0.05, trials=1, iterations=2)
        assert len(rows) == 3
        for row in rows:
            assert row.direct.mean > 0 and row.mapreduce.mean > 0

    def test_table2(self):
        from repro.bench.experiments import PAPER_TABLE2, run_table2

        result = run_table2(block_size=4)
        assert result["analytic"] == PAPER_TABLE2
        assert result["measured"] == PAPER_TABLE2

    def test_summa_timing(self):
        from repro.bench.experiments import run_summa_timing

        sync, nosync = run_summa_timing(matrix_size=24, trials=1)
        assert sync.mean > 0 and nosync.mean > 0

    def test_sssp_timing(self):
        from repro.bench.experiments import run_sssp_timing

        selective, full_scan = run_sssp_timing(scale=0.05, trials=1)
        assert full_scan.mean > selective.mean
