"""Thread-hygiene regression tests (issue: lossy/leaky shutdown).

Closing any store variant must (a) not drop in-flight async writes and
(b) return the process to its pre-construction thread count — no
orphaned lane threads, long-pool threads, or gang workers.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.ebsp.scheduler import JobScheduler
from repro.kvstore.api import FnPartConsumer, TableSpec

from tests.conftest import STORE_KINDS, make_store


def _thread_count_returns_to(baseline: int, timeout: float = 5.0) -> bool:
    """Poll until the interpreter's thread count drops back to *baseline*
    (finished daemon threads may need a moment to be reaped)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if threading.active_count() <= baseline:
            return True
        time.sleep(0.01)
    return False


def _exercise(store) -> None:
    """Touch every execution path that historically owned threads."""
    table = store.create_table(TableSpec(name="t", n_parts=4))
    table.put_many((i, i) for i in range(32))
    for i in range(8):
        table.put(100 + i, i)
    if hasattr(table, "put_async"):
        table.put_async(200, "x").result()
    if hasattr(table, "put_many_async"):
        for future in table.put_many_async((300 + i, i) for i in range(16)):
            future.result()
    total = table.enumerate_parts(FnPartConsumer(lambda i, v: len(v), lambda a, b: a + b))
    assert total > 0
    table.run_collocated(1, lambda i, v: v.get(101))


@pytest.mark.parametrize("kind", STORE_KINDS)
def test_store_close_leaves_no_threads(kind, tmp_path):
    baseline = threading.active_count()
    store = make_store(kind, tmp_path)
    _exercise(store)
    store.close()
    assert _thread_count_returns_to(baseline), (
        f"{kind} store leaked threads: "
        f"{[t.name for t in threading.enumerate()]}"
    )


@pytest.mark.parametrize("kind", ["partitioned", "replicated"])
def test_close_drains_in_flight_writes(kind, tmp_path):
    """close() must apply writes accepted before it was called, not
    drop them (the old ``shutdown(wait=False)`` behaviour)."""
    store = make_store(kind, tmp_path)
    table = store.create_table(TableSpec(name="t", n_parts=4))
    futures = list(table.put_many_async((i, i * 2) for i in range(500)))
    store.close()
    assert all(f.done() for f in futures)
    for f in futures:
        assert f.exception() is None


def test_store_close_is_idempotent_everywhere(tmp_path):
    for kind in STORE_KINDS:
        store = make_store(kind, tmp_path / kind)
        store.close()
        store.close()


def test_context_manager_closes_runtime(tmp_path):
    baseline = threading.active_count()
    for kind in STORE_KINDS:
        with make_store(kind, tmp_path / kind) as store:
            _exercise(store)
    assert _thread_count_returns_to(baseline)


def test_scheduler_shutdown_leaves_no_threads(tmp_path):
    baseline = threading.active_count()
    store = make_store("local", tmp_path)
    scheduler = JobScheduler(store, max_concurrent=2)
    scheduler.shutdown(wait=True)
    store.close()
    assert _thread_count_returns_to(baseline)
