"""Process-runtime-specific behaviour: shipping, residency, lifecycle.

The generic SPI contract runs in ``test_worker_runtime.py`` (where the
process runtime exercises its fallback surface — closures never ship);
this file pins what only a multi-process backend has: tasks executing
in worker *processes*, parts resident in their owner process, the
picklability preflight diagnostics, and child-process cleanup.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import textwrap
import threading
import time

import pytest

from repro.kvstore.api import PartConsumer, TableSpec
from repro.kvstore.partitioned import PartitionedKVStore
from repro.runtime import (
    ProcessRuntime,
    RetryPolicy,
    RuntimeClosedError,
    TaskTimeoutError,
    WorkerLostError,
    stats_delta,
)
from repro.runtime.shipping import (
    CONSUMER_SHIP_ATTR,
    ShippingError,
    ensure_picklable,
    is_shippable,
    shippable,
)


@shippable
def _remote_pid() -> int:
    return os.getpid()


@shippable
def _add(a, b):
    return a + b


@shippable
def _boom():
    raise ValueError("kaboom")


@shippable
def _suicide():
    os.kill(os.getpid(), signal.SIGKILL)


@shippable
def _sleep(seconds):
    time.sleep(seconds)
    return seconds


class _PidConsumer(PartConsumer):
    """Shippable consumer: reports the pid each part ran in."""

    _ripple_shippable_ = True

    def process_part(self, part_index, view):
        return [(part_index, os.getpid(), len(view))]

    def combine(self, a, b):
        return a + b


@pytest.fixture
def runtime():
    instance = ProcessRuntime(4, name="t")
    yield instance
    instance.close()


@pytest.fixture
def store():
    instance = PartitionedKVStore(n_partitions=4, runtime="process")
    yield instance
    instance.close()


class TestShipping:
    def test_shippable_tasks_run_in_worker_processes(self, runtime):
        parent = os.getpid()
        short = runtime.submit(0, _remote_pid).result(timeout=30)
        long = runtime.submit_long(1, _remote_pid).result(timeout=30)
        assert short != parent
        assert long != parent
        assert short != long  # distinct worker processes

    def test_unmarked_callables_fall_back_to_parent(self, runtime):
        assert not is_shippable(lambda: None)
        assert runtime.submit(0, lambda: os.getpid()).result(timeout=30) == os.getpid()

    def test_remote_exceptions_propagate(self, runtime):
        with pytest.raises(ValueError, match="kaboom"):
            runtime.submit(2, _boom).result(timeout=30)
        # the worker survives the failure
        assert runtime.submit(2, _add, 1, 2).result(timeout=30) == 3

    def test_results_are_copies(self, runtime):
        value = {"list": [1, 2]}
        out = runtime.submit(0, _add, [], [value]).result(timeout=30)
        out[0]["list"].append(3)
        assert value["list"] == [1, 2]


class TestPicklabilityPreflight:
    def test_unpicklable_argument_named_in_error(self, runtime):
        with pytest.raises(ShippingError) as info:
            runtime.submit(0, _add, 1, lambda: None)
        message = str(info.value)
        assert "argument 1" in message
        assert "_add" in message

    def test_ensure_picklable_names_the_object(self):
        with pytest.raises(ShippingError) as info:
            ensure_picklable(lambda: None, "the compute")
        message = str(info.value)
        assert "the compute" in message
        assert "cannot be shipped" in message

    def test_ensure_picklable_passes_plain_data(self):
        assert ensure_picklable({"k": [1, 2]}, "data")


class TestStats:
    def test_stats_label_backend_and_pids(self, runtime):
        runtime.submit(0, _remote_pid).result(timeout=30)
        stats = runtime.stats()
        assert stats["runtime"] == "process"
        assert 0 in stats["pids"]
        assert stats["pids"][0] != os.getpid()
        started = [w for w in stats["workers"] if "pid" in w]
        assert started and started[0]["pid"] == stats["pids"][0]

    def test_stats_delta_preserves_pid_map(self, runtime):
        before = runtime.stats()
        runtime.submit(1, _add, 1, 1).result(timeout=30)
        delta = stats_delta(before, runtime.stats())
        assert delta["tasks"] == 1
        assert 1 in delta["pids"]

    def test_job_worker_stats_carry_pids(self, store):
        from repro.ebsp.loaders import MessageListLoader

        sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))
        from tests.ebsp.jobs import TestJob
        from repro.ebsp.runner import run_job

        def fn(ctx):
            ctx.write_state(0, ctx.key)
            return False

        job = TestJob(
            fn,
            state_tables=["s"],
            loaders=[MessageListLoader([(i, i) for i in range(8)])],
        )
        result = run_job(store, job, synchronize=True)
        assert result.worker_stats["runtime"] == "process"
        assert result.worker_stats["pids"]


class TestPartResidency:
    def test_parts_live_in_owner_processes(self, store):
        table = store.create_table(TableSpec(name="t", n_parts=4))
        table.put_many((i, i * i) for i in range(32))
        owners = table.enumerate_parts(_PidConsumer())
        assert sum(n for _, _, n in owners) == 32
        pids = {pid for _, pid, _ in owners}
        assert os.getpid() not in pids
        assert len(pids) == 4  # one resident process per part here

    def test_cross_part_point_ops(self, store):
        table = store.create_table(TableSpec(name="t", n_parts=4))
        for i in range(16):
            table.put(i, {"v": i})
        assert table.get(7) == {"v": 7}
        assert table.delete(7) is True
        assert table.get(7) is None
        assert table.size() == 15

    def test_remote_values_are_copies(self, store):
        table = store.create_table(TableSpec(name="t", n_parts=2))
        table.put("k", {"list": [1, 2]})
        fetched = table.get("k")
        fetched["list"].append(3)
        assert table.get("k")["list"] == [1, 2]

    def test_drop_and_recreate_is_isolated(self, store):
        table = store.create_table(TableSpec(name="t", n_parts=4))
        table.put_many((i, i) for i in range(10))
        store.drop_table("t")
        recreated = store.create_table(TableSpec(name="t", n_parts=4))
        assert recreated.size() == 0
        recreated.put(1, "fresh")
        assert recreated.get(1) == "fresh"

    def test_ubiquity_limit_enforced_remotely(self, store):
        from repro.errors import UbiquityViolationError

        table = store.create_table(
            TableSpec(name="u", ubiquitous=True, ubiquity_limit=2)
        )
        table.put(1, "a")
        table.put(2, "b")
        with pytest.raises(UbiquityViolationError):
            table.put(3, "c")


class TestLifecycle:
    def test_close_is_idempotent_and_final(self):
        runtime = ProcessRuntime(2, name="t")
        runtime.submit(0, _remote_pid).result(timeout=30)
        runtime.close()
        runtime.close()
        assert runtime.closed
        with pytest.raises(RuntimeClosedError):
            runtime.submit(0, _remote_pid)

    def test_close_reaps_worker_processes(self):
        runtime = ProcessRuntime(2, name="t")
        pids = [
            runtime.submit(w, _remote_pid).result(timeout=30) for w in range(2)
        ]
        runtime.close()
        for pid in pids:
            assert not _pid_alive(pid)

    def test_orphaned_children_exit_when_parent_dies(self, tmp_path):
        """A crashed parent must not leak worker processes: children
        watch the parent (pipe EOF + ppid) and exit on their own."""
        script = textwrap.dedent(
            """
            import os, sys
            from repro.runtime import ProcessRuntime, shippable

            @shippable
            def pid():
                return os.getpid()

            rt = ProcessRuntime(2, name="orphan")
            pids = [rt.submit(w, pid).result(timeout=30) for w in range(2)]
            print(" ".join(str(p) for p in pids), flush=True)
            os._exit(1)  # crash without close(): children are orphaned
            """
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src)
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            timeout=60,
            env=env,
        )
        pids = [int(p) for p in out.stdout.split()]
        assert len(pids) == 2
        deadline = time.monotonic() + 15
        while time.monotonic() < deadline:
            if not any(_pid_alive(p) for p in pids):
                return
            time.sleep(0.25)
        leaked = [p for p in pids if _pid_alive(p)]
        pytest.fail(f"orphaned worker processes still alive: {leaked}")


class TestCrashTolerance:
    """Real-crash behaviour under a retry policy: SIGKILL, deadlines,
    respawn accounting, degradation, and leak-free teardown."""

    def test_sigkill_mid_task_respawns_worker(self):
        runtime = ProcessRuntime(
            2, name="ct", retry_policy=RetryPolicy(max_respawns=2)
        )
        try:
            first = runtime.submit(0, _remote_pid).result(timeout=30)
            with pytest.raises(WorkerLostError) as info:
                runtime.submit(0, _suicide).result(timeout=30)
            message = str(info.value)
            assert str(first) in message  # names the dead pid
            assert "respawn" in message  # and what happens next
            # the respawned worker serves fresh tasks under a new pid
            second = runtime.submit(0, _remote_pid).result(timeout=30)
            assert second != first
            assert runtime.stats()["respawns"] >= 1
            assert not runtime.is_degraded(0)
        finally:
            runtime.close()

    def test_hang_past_deadline_is_killed_and_times_out(self):
        runtime = ProcessRuntime(
            2,
            name="ct",
            retry_policy=RetryPolicy(task_deadline=1.0, max_respawns=2),
        )
        try:
            with pytest.raises(TaskTimeoutError, match="deadline"):
                runtime.submit_long(1, _sleep, 30.0).result(timeout=60)
            assert runtime.stats()["worker_timeouts"] >= 1
            # a fresh child picks the lane back up well within the deadline
            assert runtime.submit(1, _add, 2, 3).result(timeout=30) == 5
        finally:
            runtime.close()

    def test_budget_exhaustion_degrades_to_parent(self):
        runtime = ProcessRuntime(
            2, name="ct", retry_policy=RetryPolicy(max_respawns=0)
        )
        try:
            child = runtime.submit(0, _remote_pid).result(timeout=30)
            assert child != os.getpid()
            with pytest.raises(WorkerLostError, match="degrad"):
                runtime.submit(0, _suicide).result(timeout=30)
            deadline = time.monotonic() + 15
            while not runtime.is_degraded(0):
                assert time.monotonic() < deadline, "degradation never landed"
                time.sleep(0.05)
            assert 0 in runtime.stats()["degraded"]
            # shippable work on the degraded lane now runs in the parent
            assert runtime.submit(0, _remote_pid).result(timeout=30) == os.getpid()
            # the other worker is untouched
            assert runtime.submit(1, _remote_pid).result(timeout=30) != os.getpid()
        finally:
            runtime.close()

    def test_close_after_sigkill_leaves_no_zombies_or_threads(self):
        before = {t for t in threading.enumerate() if t.is_alive()}
        runtime = ProcessRuntime(
            2, name="reap", retry_policy=RetryPolicy(max_respawns=1)
        )
        pids = [runtime.submit(w, _remote_pid).result(timeout=30) for w in range(2)]
        with pytest.raises(WorkerLostError):
            runtime.submit(0, _suicide).result(timeout=30)
        pids.append(runtime.submit(0, _remote_pid).result(timeout=30))
        runtime.close()
        for pid in set(pids):
            assert not _pid_alive(pid), f"worker {pid} survived close()"
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            leaked = [
                t
                for t in threading.enumerate()
                if t.is_alive() and t not in before and "reap" in t.name
            ]
            if not leaked:
                break
            time.sleep(0.1)
        assert not leaked, f"leaked runtime threads: {[t.name for t in leaked]}"


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    # the pid exists, but it may be a zombie already reaped by init
    try:
        with open(f"/proc/{pid}/stat") as handle:
            return handle.read().split()[2] != "Z"
    except OSError:
        return False
