"""The WorkerRuntime contract, pinned for all three implementations.

These tests are the executable form of the SPI documented in
``repro/runtime/api.py``: placement, per-worker FIFO, long-op
serialization, drain-then-stop shutdown, gang dispatch, and the
instrumentation counters.

The process runtime participates through its fallback surface here
(these tasks are closures, which never ship); its process-specific
behaviour — shipped execution, part residency, child lifecycle — is
pinned in ``test_process_runtime.py``.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.runtime import (
    InlineRuntime,
    ProcessRuntime,
    RuntimeClosedError,
    ThreadedRuntime,
    WorkerRuntime,
    resolve_runtime,
    stats_delta,
)

RUNTIME_KINDS = ["threaded", "inline", "process"]


def make_runtime(kind: str, n_workers: int = 4) -> WorkerRuntime:
    if kind == "threaded":
        return ThreadedRuntime(n_workers, name="t")
    if kind == "process":
        return ProcessRuntime(n_workers, name="t")
    return InlineRuntime(n_workers, name="t")


@pytest.fixture(params=RUNTIME_KINDS)
def runtime(request):
    instance = make_runtime(request.param)
    yield instance
    instance.close()


class TestPlacement:
    def test_worker_of_is_modulo(self, runtime):
        assert [runtime.worker_of(lane) for lane in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_task_sees_its_worker_marker(self, runtime):
        assert runtime.submit(6, runtime.current_worker).result() == 2
        assert runtime.submit_long(6, runtime.current_worker).result() == 2

    def test_client_thread_is_on_no_worker(self, runtime):
        assert runtime.current_worker() is None

    def test_markers_are_per_instance(self, runtime):
        other = make_runtime("inline", n_workers=4)
        try:
            seen = runtime.submit(1, other.current_worker).result()
            assert seen is None
        finally:
            other.close()


class TestOrdering:
    def test_fifo_per_worker(self, runtime):
        order = []
        futures = [runtime.submit(0, order.append, i) for i in range(50)]
        for future in futures:
            future.result()
        assert order == list(range(50))

    def test_long_ops_serialize_per_worker(self, runtime):
        active = []
        overlap = []

        def task(i):
            active.append(i)
            if len(active) > 1:
                overlap.append(tuple(active))
            time.sleep(0.005)
            active.remove(i)
            return i

        futures = [runtime.submit_long(1, task, i) for i in range(5)]
        assert [f.result() for f in futures] == list(range(5))
        assert overlap == []

    def test_long_op_does_not_block_short_lane(self):
        runtime = ThreadedRuntime(2, name="t")
        try:
            release = threading.Event()
            long_future = runtime.submit_long(0, release.wait, 5)
            short_future = runtime.submit(0, lambda: "quick")
            assert short_future.result(timeout=2) == "quick"
            assert not long_future.done()
            release.set()
            assert long_future.result(timeout=2) is True
        finally:
            runtime.close()

    def test_exceptions_flow_through_futures(self, runtime):
        def boom():
            raise ValueError("boom")

        with pytest.raises(ValueError):
            runtime.submit(0, boom).result()
        with pytest.raises(ValueError):
            runtime.submit_long(0, boom).result()
        # the runtime survives task failures
        assert runtime.submit(0, lambda: "ok").result() == "ok"


class TestLifecycle:
    @pytest.mark.parametrize("kind", RUNTIME_KINDS)
    def test_close_is_idempotent(self, kind):
        runtime = make_runtime(kind)
        runtime.close()
        runtime.close()
        assert runtime.closed

    @pytest.mark.parametrize("kind", RUNTIME_KINDS)
    def test_submit_after_close_raises(self, kind):
        runtime = make_runtime(kind)
        runtime.close()
        with pytest.raises(RuntimeClosedError):
            runtime.submit(0, lambda: None)
        with pytest.raises(RuntimeClosedError):
            runtime.submit_long(0, lambda: None)
        with pytest.raises(RuntimeClosedError):
            runtime.run_tasks([lambda: None])

    def test_close_drains_pending_work(self):
        """Nothing submitted before close may be dropped (the lossy-close
        bug this layer was built to remove)."""
        runtime = ThreadedRuntime(2, name="t")
        done = []
        futures = [
            runtime.submit(i % 2, lambda i=i: done.append(i)) for i in range(200)
        ]
        runtime.close(wait=True)
        assert all(f.done() for f in futures)
        assert sorted(done) == list(range(200))

    def test_close_drains_long_chain(self):
        runtime = ThreadedRuntime(2, name="t")
        done = []
        futures = [runtime.submit_long(0, lambda i=i: done.append(i)) for i in range(20)]
        runtime.close(wait=True)
        assert all(f.done() for f in futures)
        assert done == list(range(20))

    @pytest.mark.parametrize("kind", RUNTIME_KINDS)
    def test_context_manager_closes(self, kind):
        with make_runtime(kind) as runtime:
            runtime.submit(0, lambda: None).result()
        assert runtime.closed


class TestGangs:
    def test_run_tasks_gathers_in_order(self, runtime):
        results = runtime.run_tasks([lambda i=i: i * i for i in range(4)])
        assert results == [0, 1, 4, 9]

    def test_gang_tasks_truly_concurrent(self, runtime):
        barrier = threading.Barrier(4, timeout=10)
        results = runtime.run_tasks([lambda: barrier.wait() is not None] * 4)
        assert results == [True] * 4

    def test_gang_exception_after_join(self, runtime):
        joined = threading.Event()

        def bad():
            raise RuntimeError("gang failure")

        def good():
            joined.set()
            return "ok"

        with pytest.raises(RuntimeError, match="gang failure"):
            runtime.run_tasks([bad, good])
        assert joined.is_set()


class TestStats:
    def test_counters_accumulate(self, runtime):
        for lane in range(8):
            runtime.submit(lane, lambda: None).result()
        runtime.submit_long(0, lambda: None).result()
        runtime.run_tasks([lambda: None, lambda: None])
        runtime.record_steal(3)
        stats = runtime.stats()
        assert stats["runtime"] == runtime.kind
        assert stats["n_workers"] == 4
        assert stats["tasks"] == 9
        assert stats["gang_tasks"] == 2
        assert stats["steals"] == 1
        per_worker = {w["worker"]: w["tasks"] for w in stats["workers"]}
        assert per_worker == {0: 3, 1: 2, 2: 2, 3: 2}
        assert stats["workers"][3]["steals"] == 1

    def test_stats_delta(self, runtime):
        runtime.submit(0, lambda: None).result()
        before = runtime.stats()
        runtime.submit(0, lambda: None).result()
        runtime.submit(1, lambda: None).result()
        delta = stats_delta(before, runtime.stats())
        assert delta["tasks"] == 2
        assert {w["worker"]: w["tasks"] for w in delta["workers"]} == {
            0: 1,
            1: 1,
            2: 0,
            3: 0,
        }

    def test_queue_depth_high_water_mark(self):
        runtime = ThreadedRuntime(1, name="t")
        try:
            release = threading.Event()
            futures = [runtime.submit(0, release.wait, 5)]
            futures += [runtime.submit(0, lambda: None) for _ in range(9)]
            release.set()
            for future in futures:
                future.result(timeout=5)
            depth = runtime.stats()["workers"][0]["max_queue_depth"]
            assert depth >= 2
        finally:
            runtime.close()

    def test_stats_delta_queue_depth_is_per_window(self):
        """Regression: a job's delta must report the depth reached during
        the job, not the runtime's lifetime high-water mark."""
        runtime = ThreadedRuntime(1, name="t")
        try:
            # build a lifetime HWM well above anything the "job" does
            release = threading.Event()
            futures = [runtime.submit(0, release.wait, 5)]
            futures += [runtime.submit(0, lambda: None) for _ in range(9)]
            release.set()
            for future in futures:
                future.result(timeout=5)
            assert runtime.stats()["workers"][0]["max_queue_depth"] >= 2

            # the "job": one baseline-scoped window with light traffic
            runtime.begin_stats_window()
            before = runtime.stats()
            runtime.submit(0, lambda: None).result(timeout=5)
            delta = stats_delta(before, runtime.stats())
            assert delta["workers"][0]["max_queue_depth"] <= 1
            # the lifetime mark is untouched by the window reset
            assert runtime.stats()["workers"][0]["max_queue_depth"] >= 2
        finally:
            runtime.close()


class TestElasticPrimitives:
    """Lane overrides, freeze gates, and direct worker addressing — the
    runtime surface the elastic layer drives at barriers."""

    def test_lane_override_reroutes_placement(self, runtime):
        assert runtime.worker_of(5) == 1
        runtime.set_lane_override(5, 3)
        assert runtime.worker_of(5) == 3
        assert runtime.lane_overrides() == {5: 3}
        seen = runtime.submit(5, runtime.current_worker).result()
        assert seen == 3
        runtime.clear_lane_override(5)
        assert runtime.worker_of(5) == 1
        assert runtime.lane_overrides() == {}

    def test_lane_override_validates_worker(self, runtime):
        with pytest.raises(ValueError):
            runtime.set_lane_override(0, 4)

    def test_clear_missing_override_is_noop(self, runtime):
        runtime.clear_lane_override(17)

    def test_submit_to_worker_bypasses_placement(self, runtime):
        # lane 1 maps to worker 1, but direct addressing ignores lanes
        runtime.set_lane_override(1, 0)
        try:
            seen = runtime.submit_to_worker(2, runtime.current_worker).result()
            assert seen == 2
        finally:
            runtime.clear_lane_override(1)

    def test_drain_worker_applies_queued_tasks(self, runtime):
        applied = []
        for i in range(10):
            runtime.submit(0, applied.append, i)
        runtime.drain_worker(0)
        assert applied == list(range(10))

    def test_freeze_parks_client_until_unfreeze(self):
        runtime = ThreadedRuntime(2, name="t")
        try:
            runtime.freeze_lane(0)
            submitted = threading.Event()

            def client():
                future = runtime.submit(0, lambda: "thawed")
                submitted.set()
                return future.result(timeout=5)

            thread_result = []
            thread = threading.Thread(
                target=lambda: thread_result.append(client())
            )
            thread.start()
            # the client is parked at the gate, not submitting
            assert not submitted.wait(0.2)
            runtime.unfreeze_lane(0)
            thread.join(timeout=5)
            assert thread_result == ["thawed"]
        finally:
            runtime.close()

    def test_freeze_does_not_block_other_lanes(self):
        runtime = ThreadedRuntime(2, name="t")
        try:
            runtime.freeze_lane(0)
            assert runtime.submit(1, lambda: "ok").result(timeout=2) == "ok"
            runtime.unfreeze_lane(0)
        finally:
            runtime.close()

    def test_bypassing_gates_passes_through_freeze(self):
        runtime = ThreadedRuntime(2, name="t")
        try:
            runtime.freeze_lane(0)
            with runtime.bypassing_gates():
                assert runtime.submit(0, lambda: "mover").result(timeout=2) == "mover"
            runtime.unfreeze_lane(0)
        finally:
            runtime.close()

    def test_workers_pass_through_freeze(self):
        """A worker submitting to its own runtime must never deadlock on
        a gate — the drain the freeze protects depends on it."""
        runtime = ThreadedRuntime(2, name="t")
        try:
            runtime.freeze_lane(0)

            def from_worker():
                return runtime.submit(0, lambda: "nested").result(timeout=2)

            assert runtime.submit(1, from_worker).result(timeout=5) == "nested"
            runtime.unfreeze_lane(0)
        finally:
            runtime.close()


class TestInlineDeterminism:
    def test_execution_is_immediate_and_ordered(self):
        runtime = InlineRuntime(4, name="t")
        order = []
        runtime.submit(2, order.append, "a")
        order.append("b")
        runtime.submit_long(1, order.append, "c")
        assert order == ["a", "b", "c"]
        runtime.close()

    def test_nested_markers_restore(self):
        runtime = InlineRuntime(4, name="t")

        def outer():
            inner_seen = runtime.submit(3, runtime.current_worker).result()
            return inner_seen, runtime.current_worker()

        inner_seen, after_inner = runtime.submit(1, outer).result()
        assert inner_seen == 3
        assert after_inner == 1
        assert runtime.current_worker() is None
        runtime.close()


class TestResolveRuntime:
    def test_default_and_names(self):
        threaded = resolve_runtime(None, 4)
        inline = resolve_runtime("inline", 4)
        try:
            assert isinstance(threaded, ThreadedRuntime)
            assert isinstance(inline, InlineRuntime)
        finally:
            threaded.close()
            inline.close()

    def test_instance_passthrough_checks_width(self):
        runtime = InlineRuntime(4)
        try:
            assert resolve_runtime(runtime, 4) is runtime
            with pytest.raises(ValueError):
                resolve_runtime(runtime, 8)
        finally:
            runtime.close()

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            resolve_runtime("fibers", 4)
