"""Ordered-table range scans across every store implementation."""

from __future__ import annotations

import pytest

from repro.errors import StoreError
from repro.kvstore.api import TableSpec


class TestRangeScan:
    def test_requires_ordered_table(self, store):
        table = store.create_table(TableSpec(name="t"))
        with pytest.raises(StoreError):
            table.range_scan(0, 10)

    def test_globally_sorted(self, store):
        table = store.create_table(TableSpec(name="t", n_parts=3, ordered=True))
        table.put_many((i, f"v{i}") for i in range(50))
        result = table.range_scan(10, 20)
        assert result == [(i, f"v{i}") for i in range(10, 20)]

    def test_open_ended_bounds(self, store):
        table = store.create_table(TableSpec(name="t", n_parts=2, ordered=True))
        table.put_many((i, i) for i in range(10))
        assert table.range_scan(hi=3) == [(0, 0), (1, 1), (2, 2)]
        assert table.range_scan(lo=8) == [(8, 8), (9, 9)]
        assert len(table.range_scan()) == 10

    def test_empty_range(self, store):
        table = store.create_table(TableSpec(name="t", ordered=True))
        table.put_many((i, i) for i in range(10))
        assert table.range_scan(100, 200) == []

    def test_after_deletes(self, store):
        table = store.create_table(TableSpec(name="t", ordered=True))
        table.put_many((i, i) for i in range(10))
        table.delete(5)
        table.delete(7)
        assert [k for k, _ in table.range_scan(4, 9)] == [4, 6, 8]

    def test_string_keys(self, store):
        table = store.create_table(TableSpec(name="t", n_parts=3, ordered=True))
        table.put_many((w, len(w)) for w in ["apple", "banana", "cherry", "date", "elderberry"])
        assert [k for k, _ in table.range_scan("b", "d")] == ["banana", "cherry"]

    def test_touches_only_fraction(self, store):
        """The motivation: read a sliver without scanning everything."""
        table = store.create_table(TableSpec(name="t", n_parts=4, ordered=True))
        table.put_many((i, i * i) for i in range(1000))
        sliver = table.range_scan(500, 505)
        assert sliver == [(i, i * i) for i in range(500, 505)]
