"""SPI conformance: every store must honor the Table/KVStore contract.

These tests run against all four implementations via the ``store``
fixture — the executable form of the paper's claim that everything
above the SPI is store-independent.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import (
    BadTableSpecError,
    NoSuchTableError,
    TableDroppedError,
    TableExistsError,
    UbiquityViolationError,
)
from repro.kvstore.api import FnPairConsumer, FnPartConsumer, TableSpec
from repro.kvstore.local import LocalKVStore


class TestTableBasics:
    def test_put_get(self, store):
        table = store.create_table(TableSpec(name="t"))
        table.put("k", "v")
        assert table.get("k") == "v"

    def test_get_missing_returns_none(self, store):
        table = store.create_table(TableSpec(name="t"))
        assert table.get("nope") is None

    def test_overwrite(self, store):
        table = store.create_table(TableSpec(name="t"))
        table.put("k", 1)
        table.put("k", 2)
        assert table.get("k") == 2

    def test_delete_present(self, store):
        table = store.create_table(TableSpec(name="t"))
        table.put("k", 1)
        assert table.delete("k") is True
        assert table.get("k") is None

    def test_delete_absent(self, store):
        table = store.create_table(TableSpec(name="t"))
        assert table.delete("k") is False

    def test_none_value_rejected(self, store):
        table = store.create_table(TableSpec(name="t"))
        with pytest.raises((ValueError, Exception)):
            table.put("k", None)

    def test_contains(self, store):
        table = store.create_table(TableSpec(name="t"))
        table.put("k", 0.5)
        assert table.contains("k")
        assert not table.contains("other")

    def test_size_and_clear(self, store):
        table = store.create_table(TableSpec(name="t"))
        table.put_many((i, i * i) for i in range(20))
        assert table.size() == 20
        table.clear()
        assert table.size() == 0

    def test_put_many_get_many(self, store):
        table = store.create_table(TableSpec(name="t"))
        table.put_many([(i, str(i)) for i in range(10)])
        got = table.get_many(range(10))
        assert got == {i: str(i) for i in range(10)}

    def test_items_materializes_everything(self, store):
        table = store.create_table(TableSpec(name="t"))
        pairs = {i: -i for i in range(15)}
        table.put_many(pairs.items())
        assert dict(table.items()) == pairs

    def test_varied_key_types(self, store):
        table = store.create_table(TableSpec(name="t"))
        keys = [0, 1, -5, "s", b"b", (1, "x"), 2.5]
        for i, key in enumerate(keys):
            table.put(key, i)
        for i, key in enumerate(keys):
            assert table.get(key) == i

    def test_part_of_stable_and_in_range(self, store):
        table = store.create_table(TableSpec(name="t", n_parts=3))
        for key in ["a", "b", 1, 2, (3,)]:
            part = table.part_of(key)
            assert 0 <= part < 3
            assert table.part_of(key) == part


class TestAsyncAndBatchedOps:
    """The non-blocking/batched SPI surface every store must honor."""

    def test_put_async_applies(self, store):
        table = store.create_table(TableSpec(name="t"))
        futures = [table.put_async(i, i * 2) for i in range(8)]
        for future in futures:
            assert future.result(timeout=10) is None
        assert table.get_many(range(8)) == {i: i * 2 for i in range(8)}

    def test_delete_async_reports_presence(self, store):
        table = store.create_table(TableSpec(name="t"))
        table.put("k", 1)
        assert table.delete_async("k").result(timeout=10) is True
        assert table.delete_async("k").result(timeout=10) is False
        assert table.get("k") is None

    def test_put_many_async_gathers(self, store):
        table = store.create_table(TableSpec(name="t", n_parts=3))
        futures = table.put_many_async([(i, str(i)) for i in range(30)])
        for future in futures:
            future.result(timeout=10)
        assert table.get_many(range(30)) == {i: str(i) for i in range(30)}

    def test_delete_many_removes_across_parts(self, store):
        table = store.create_table(TableSpec(name="t", n_parts=3))
        table.put_many([(i, i) for i in range(20)])
        table.delete_many(range(0, 20, 2))
        assert table.get_many(range(20)) == {
            i: (None if i % 2 == 0 else i) for i in range(20)
        }
        table.delete_many([])  # empty batch is a no-op
        assert table.size() == 10

    def test_get_many_missing_keys_are_none(self, store):
        table = store.create_table(TableSpec(name="t"))
        table.put(1, "one")
        assert table.get_many([1, 2]) == {1: "one", 2: None}

    def test_get_many_empty(self, store):
        table = store.create_table(TableSpec(name="t"))
        assert table.get_many([]) == {}

    def test_put_many_rejects_none_value(self, store):
        table = store.create_table(TableSpec(name="t"))
        with pytest.raises((ValueError, Exception)):
            table.put_many([(1, "a"), (2, None)])

    def test_put_many_ubiquitous_limit(self, store):
        table = store.create_table(
            TableSpec(name="u", ubiquitous=True, ubiquity_limit=3)
        )
        table.put_many([(i, i) for i in range(3)])
        with pytest.raises(UbiquityViolationError):
            table.put_many([(99, 99)])
        # overwrites never count as growth, batched or not
        table.put_many([(0, "new")])
        assert table.get(0) == "new"

    def test_async_on_dropped_table(self, store):
        table = store.create_table(TableSpec(name="t"))
        store.drop_table("t")
        with pytest.raises(TableDroppedError):
            table.put_async("k", 1).result(timeout=10)


class TestEnumeration:
    def test_enumerate_pairs_visits_all(self, store):
        table = store.create_table(TableSpec(name="t", n_parts=3))
        table.put_many((i, i) for i in range(30))
        seen = []
        table.enumerate_pairs(FnPairConsumer(lambda k, v: seen.append(k)))
        assert sorted(seen) == list(range(30))

    def test_enumerate_pairs_early_stop_per_part(self, store):
        table = store.create_table(TableSpec(name="t", n_parts=3))
        table.put_many((i, i) for i in range(30))
        counts = {"n": 0}

        def consume(k, v):
            counts["n"] += 1
            return True  # stop after the first pair of each part

        table.enumerate_pairs(FnPairConsumer(consume))
        assert counts["n"] <= 3

    def test_enumerate_pairs_combines_part_results(self, store):
        table = store.create_table(TableSpec(name="t", n_parts=4))
        table.put_many((i, i) for i in range(40))
        sums = {}

        def setup(part):
            sums[part] = 0

        class State:
            part = None

        def consume(k, v):
            sums[State.part] += v
            return False

        # track current part through setup
        def setup2(part):
            State.part = part
            sums[part] = 0

        total = table.enumerate_pairs(
            FnPairConsumer(
                consume,
                setup=setup2,
                finish=lambda part: sums[part],
                combine=lambda a, b: a + b,
            )
        )
        assert total == sum(range(40))

    def test_enumerate_parts_processes_each_once(self, store):
        table = store.create_table(TableSpec(name="t", n_parts=5))
        table.put_many((i, 1) for i in range(25))
        count = table.enumerate_parts(
            FnPartConsumer(lambda idx, part: len(part), lambda a, b: a + b)
        )
        assert count == 25

    def test_enumerate_parts_subset(self, store):
        table = store.create_table(TableSpec(name="t", n_parts=4))
        table.put_many((i, 1) for i in range(20))
        visited = []
        table.enumerate_parts(
            FnPartConsumer(lambda idx, part: visited.append(idx), lambda a, b: None),
            parts=[1, 3],
        )
        assert sorted(visited) == [1, 3]

    def test_ordered_table_sorted_iteration(self, store):
        table = store.create_table(TableSpec(name="t", n_parts=2, ordered=True))
        for key in [9, 3, 7, 1, 5, 0, 8, 2]:
            table.put(key, key)
        seen_per_part = {}

        class State:
            part = None

        def consume(k, v):
            seen_per_part.setdefault(State.part, []).append(k)
            return False

        def setup(part):
            State.part = part

        table.enumerate_pairs(FnPairConsumer(consume, setup=setup))
        for keys in seen_per_part.values():
            assert keys == sorted(keys)


class TestCollocatedCompute:
    def test_run_collocated_reads_and_writes(self, store):
        table = store.create_table(TableSpec(name="t", n_parts=2))
        table.put(0, 10)  # int key 0 → part 0

        def mobile(part_index, view):
            value = view.get(0)
            view.put(0, value + 1)
            return value

        assert table.run_collocated(0, mobile) == 10
        assert table.get(0) == 11

    def test_run_collocated_bad_part(self, store):
        table = store.create_table(TableSpec(name="t", n_parts=2))
        with pytest.raises(IndexError):
            table.run_collocated(5, lambda i, v: None)


class TestCoPartitioning:
    def test_like_inherits_parts(self, store):
        store.create_table(TableSpec(name="base", n_parts=3))
        twin = store.create_table(TableSpec(name="twin", like="base"))
        assert twin.n_parts == 3

    def test_like_same_key_mapping(self, store):
        base = store.create_table(TableSpec(name="base", n_parts=5))
        twin = store.create_table(TableSpec(name="twin", like="base"))
        for key in range(50):
            assert base.part_of(key) == twin.part_of(key)

    def test_like_unknown_table(self, store):
        with pytest.raises(NoSuchTableError):
            store.create_table(TableSpec(name="t", like="ghost"))


class TestUbiquitousTables:
    def test_single_part(self, store):
        table = store.create_table(TableSpec(name="u", ubiquitous=True))
        assert table.n_parts == 1

    def test_limit_enforced(self, store):
        table = store.create_table(
            TableSpec(name="u", ubiquitous=True, ubiquity_limit=3)
        )
        for i in range(3):
            table.put(i, i)
        with pytest.raises(UbiquityViolationError):
            table.put(99, 99)

    def test_overwrite_within_limit_ok(self, store):
        table = store.create_table(
            TableSpec(name="u", ubiquitous=True, ubiquity_limit=2)
        )
        table.put("a", 1)
        table.put("b", 2)
        table.put("a", 3)  # overwrite, not growth
        assert table.get("a") == 3


class TestStoreNamespace:
    def test_create_duplicate_rejected(self, store):
        store.create_table(TableSpec(name="t"))
        with pytest.raises(TableExistsError):
            store.create_table(TableSpec(name="t"))

    def test_drop_then_recreate(self, store):
        store.create_table(TableSpec(name="t"))
        store.drop_table("t")
        store.create_table(TableSpec(name="t"))  # no error

    def test_drop_unknown(self, store):
        with pytest.raises(NoSuchTableError):
            store.drop_table("ghost")

    def test_get_unknown(self, store):
        with pytest.raises(NoSuchTableError):
            store.get_table("ghost")

    def test_dropped_handle_unusable(self, store):
        table = store.create_table(TableSpec(name="t"))
        store.drop_table("t")
        with pytest.raises(TableDroppedError):
            table.put("k", 1)

    def test_list_tables_sorted(self, store):
        for name in ["zeta", "alpha", "mid"]:
            store.create_table(TableSpec(name=name))
        assert store.list_tables() == ["alpha", "mid", "zeta"]

    def test_get_or_create(self, store):
        t1 = store.get_or_create_table(TableSpec(name="t"))
        t2 = store.get_or_create_table(TableSpec(name="t"))
        assert t1 is t2


class TestSpecValidation:
    def test_empty_name(self):
        with pytest.raises(BadTableSpecError):
            TableSpec(name="").validate()

    def test_bad_parts(self):
        with pytest.raises(BadTableSpecError):
            TableSpec(name="t", n_parts=0).validate()

    def test_parts_and_like_conflict(self):
        with pytest.raises(BadTableSpecError):
            TableSpec(name="t", n_parts=2, like="x").validate()

    def test_ubiquitous_like_conflict(self):
        with pytest.raises(BadTableSpecError):
            TableSpec(name="t", ubiquitous=True, like="x").validate()

    def test_negative_replication(self):
        with pytest.raises(BadTableSpecError):
            TableSpec(name="t", replication=-1).validate()


@settings(max_examples=30, suppress_health_check=[HealthCheck.too_slow])
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["put", "delete", "get"]),
            st.integers(min_value=0, max_value=40),
            st.integers(),
        ),
        max_size=80,
    )
)
def test_table_behaves_like_dict(ops):
    """Model-based property: any op sequence matches a plain dict."""
    store = LocalKVStore(default_n_parts=3)
    table = store.create_table(TableSpec(name="t"))
    model = {}
    for op, key, value in ops:
        if op == "put":
            table.put(key, value)
            model[key] = value
        elif op == "delete":
            assert table.delete(key) == (key in model)
            model.pop(key, None)
        else:
            assert table.get(key) == model.get(key)
    assert dict(table.items()) == model
    assert table.size() == len(model)
