"""The WXS-analog store: replication, shard transactions, failure."""

from __future__ import annotations

import pytest

from repro.errors import ShardFailedError, TransactionError
from repro.kvstore.api import TableSpec
from repro.kvstore.replicated import ReplicatedKVStore


@pytest.fixture
def store():
    instance = ReplicatedKVStore(n_shards=4, replication=1)
    yield instance
    instance.close()


class TestReplication:
    def test_sync_replication_survives_failover(self, store):
        table = store.create_table(TableSpec(name="t", n_parts=4))
        table.put_many((i, f"v{i}") for i in range(40))
        for shard in range(4):
            store.fail_primary(shard)
            lost = store.promote_backup(shard)
            assert lost == 0
        for i in range(40):
            assert table.get(i) == f"v{i}"

    def test_failed_shard_rejects_ops(self, store):
        table = store.create_table(TableSpec(name="t", n_parts=4))
        table.put(0, "x")
        store.fail_primary(0)
        with pytest.raises(ShardFailedError):
            table.get(0)
        with pytest.raises(ShardFailedError):
            table.put(0, "y")
        # other shards unaffected
        table.put(1, "ok")
        assert table.get(1) == "ok"

    def test_promote_requires_failure(self, store):
        with pytest.raises(TransactionError):
            store.promote_backup(0)

    def test_promote_without_backup(self):
        bare = ReplicatedKVStore(n_shards=2, replication=0)
        try:
            bare.fail_primary(0)
            with pytest.raises(TransactionError):
                bare.promote_backup(0)
        finally:
            bare.close()

    def test_async_replication_loses_unsynced_writes(self):
        lossy = ReplicatedKVStore(n_shards=1, replication=1, sync_replication=False)
        try:
            table = lossy.create_table(TableSpec(name="t", n_parts=1))
            table.put("a", 1)
            lossy.sync_backups()
            table.put("b", 2)  # queued, never synced
            lossy.fail_primary(0)
            lost = lossy.promote_backup(0)
            assert lost == 1
            assert table.get("a") == 1
            assert table.get("b") is None
        finally:
            lossy.close()

    def test_async_replication_sync_drains(self):
        lossy = ReplicatedKVStore(n_shards=1, replication=1, sync_replication=False)
        try:
            table = lossy.create_table(TableSpec(name="t", n_parts=1))
            table.put("a", 1)
            table.put("b", 2)
            lossy.sync_backups()
            lossy.fail_primary(0)
            assert lossy.promote_backup(0) == 0
            assert table.get("b") == 2
        finally:
            lossy.close()


class TestShardTransactions:
    def test_atomic_multi_table_commit(self, store):
        a = store.create_table(TableSpec(name="a", n_parts=4))
        b = store.create_table(TableSpec(name="b", like="a"))
        part = a.part_of(0)
        shard = store.shard_of_part(part)
        with store.shard_transaction(shard) as txn:
            txn.put("a", part, 0, "in-a")
            txn.put("b", part, 0, "in-b")
        assert a.get(0) == "in-a"
        assert b.get(0) == "in-b"

    def test_exception_aborts(self, store):
        a = store.create_table(TableSpec(name="a", n_parts=4))
        part = a.part_of(0)
        shard = store.shard_of_part(part)
        with pytest.raises(RuntimeError):
            with store.shard_transaction(shard) as txn:
                txn.put("a", part, 0, "never")
                raise RuntimeError("boom")
        assert a.get(0) is None

    def test_wrong_shard_rejected(self, store):
        a = store.create_table(TableSpec(name="a", n_parts=4))
        with store.shard_transaction(0) as txn:
            with pytest.raises(TransactionError):
                txn.put("a", 1, "k", "v")  # part 1 is shard 1, not 0
            txn.abort()

    def test_transaction_delete(self, store):
        a = store.create_table(TableSpec(name="a", n_parts=4))
        a.put(0, "x")
        part = a.part_of(0)
        with store.shard_transaction(store.shard_of_part(part)) as txn:
            txn.delete("a", part, 0)
        assert a.get(0) is None

    def test_double_commit_rejected(self, store):
        store.create_table(TableSpec(name="a", n_parts=4))
        txn = store.shard_transaction(0)
        txn.commit()
        with pytest.raises(TransactionError):
            txn.commit()

    def test_transaction_replicates(self, store):
        a = store.create_table(TableSpec(name="a", n_parts=4))
        part = a.part_of(5)
        shard = store.shard_of_part(part)
        with store.shard_transaction(shard) as txn:
            txn.put("a", part, 5, "replicated")
        store.fail_primary(shard)
        store.promote_backup(shard)
        assert a.get(5) == "replicated"

    def test_none_value_rejected_in_txn(self, store):
        store.create_table(TableSpec(name="a", n_parts=4))
        with store.shard_transaction(0) as txn:
            with pytest.raises(TransactionError):
                txn.put("a", 0, "k", None)
            txn.abort()


class TestCollocatedReplication:
    def test_collocated_writes_survive_failover(self, store):
        """Mobile-code writes go through the replication path (unlike a
        raw part view, which would lose them on promotion)."""
        table = store.create_table(TableSpec(name="t", n_parts=4))
        part = table.part_of(0)

        def mobile(part_index, view):
            view.put(0, "written-collocated")
            view.put(4, "also")  # key 4 → also part 0 of 4
            view.delete(4)

        table.run_collocated(part, mobile)
        shard = store.shard_of_part(part)
        store.fail_primary(shard)
        store.promote_backup(shard)
        assert table.get(0) == "written-collocated"
        assert table.get(4) is None

    def test_collocated_view_reads_and_iterates(self, store):
        table = store.create_table(TableSpec(name="t", n_parts=2))
        table.put(0, "a")

        def mobile(part_index, view):
            assert view.get(0) == "a"
            assert len(view) >= 1
            return sorted(k for k, _ in view.items())

        keys = table.run_collocated(table.part_of(0), mobile)
        assert 0 in keys


class TestConstruction:
    def test_bad_shards(self):
        with pytest.raises(ValueError):
            ReplicatedKVStore(n_shards=0)

    def test_bad_replication(self):
        with pytest.raises(ValueError):
            ReplicatedKVStore(replication=-1)
