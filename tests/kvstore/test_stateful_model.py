"""Stateful (rule-based) model checking of the store SPI.

Hypothesis drives random interleavings of table creation, point
operations, co-partitioned twins, and drops against two stores at once
— the trivially-correct LocalKVStore and the threaded
PartitionedKVStore — asserting they never disagree.
"""

from __future__ import annotations

from hypothesis import settings
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.errors import NoSuchTableError, TableExistsError
from repro.kvstore.api import TableSpec
from repro.kvstore.local import LocalKVStore
from repro.kvstore.partitioned import PartitionedKVStore

_KEYS = st.integers(min_value=0, max_value=30)
_VALUES = st.integers()
_NAMES = st.sampled_from(["alpha", "beta", "gamma"])


class StoreEquivalence(RuleBasedStateMachine):
    tables = Bundle("tables")

    @initialize()
    def setup(self):
        self.reference = LocalKVStore(default_n_parts=3)
        self.subject = PartitionedKVStore(n_partitions=3)

    def teardown(self):
        self.subject.close()

    @rule(target=tables, name=_NAMES, ordered=st.booleans())
    def create_table(self, name, ordered):
        spec = TableSpec(name=name, n_parts=3, ordered=ordered)
        try:
            expected = self.reference.create_table(spec)
            created = True
        except TableExistsError:
            created = False
        if created:
            self.subject.create_table(spec)
            return name
        else:
            try:
                self.subject.create_table(spec)
                raise AssertionError("subject accepted a duplicate table")
            except TableExistsError:
                return name

    @rule(name=tables, key=_KEYS, value=_VALUES)
    def put(self, name, key, value):
        try:
            self.reference.get_table(name).put(key, value)
            ok = True
        except NoSuchTableError:
            ok = False
        if ok:
            self.subject.get_table(name).put(key, value)

    @rule(name=tables, key=_KEYS)
    def get(self, name, key):
        try:
            expected = self.reference.get_table(name).get(key)
        except NoSuchTableError:
            return
        assert self.subject.get_table(name).get(key) == expected

    @rule(name=tables, key=_KEYS)
    def delete(self, name, key):
        try:
            expected = self.reference.get_table(name).delete(key)
        except NoSuchTableError:
            return
        assert self.subject.get_table(name).delete(key) == expected

    @rule(name=tables)
    def drop(self, name):
        try:
            self.reference.drop_table(name)
            dropped = True
        except NoSuchTableError:
            dropped = False
        if dropped:
            self.subject.drop_table(name)

    @invariant()
    def same_catalog_and_contents(self):
        if not hasattr(self, "reference"):
            return
        assert self.subject.list_tables() == self.reference.list_tables()
        for name in self.reference.list_tables():
            ref = dict(self.reference.get_table(name).items())
            sub = dict(self.subject.get_table(name).items())
            assert sub == ref, f"table {name!r} diverged"


StoreEquivalence.TestCase.settings = settings(
    max_examples=25, stateful_step_count=30, deadline=None
)
TestStoreEquivalence = StoreEquivalence.TestCase
