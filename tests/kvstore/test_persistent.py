"""The HBase-analog store: durability across close/reopen."""

from __future__ import annotations

import os

import pytest

from repro.kvstore.api import TableSpec
from repro.kvstore.persistent import PersistentKVStore, _read_records


class TestDurability:
    def test_reopen_recovers_data(self, tmp_path):
        path = str(tmp_path / "s")
        with PersistentKVStore(path) as store:
            table = store.create_table(TableSpec(name="t", n_parts=3))
            table.put_many((i, f"v{i}") for i in range(30))
        with PersistentKVStore(path) as store:
            table = store.get_table("t")
            assert table.size() == 30
            assert table.get(7) == "v7"

    def test_reopen_recovers_deletes(self, tmp_path):
        path = str(tmp_path / "s")
        with PersistentKVStore(path) as store:
            table = store.create_table(TableSpec(name="t"))
            table.put("keep", 1)
            table.put("drop", 2)
            table.delete("drop")
        with PersistentKVStore(path) as store:
            table = store.get_table("t")
            assert table.get("keep") == 1
            assert table.get("drop") is None

    def test_flush_then_reopen(self, tmp_path):
        path = str(tmp_path / "s")
        with PersistentKVStore(path) as store:
            table = store.create_table(TableSpec(name="t", n_parts=2))
            table.put_many((i, i * 2) for i in range(20))
            table.flush()
            table.put(100, 200)  # post-flush write goes to the fresh log
        with PersistentKVStore(path) as store:
            table = store.get_table("t")
            assert table.size() == 21
            assert table.get(100) == 200

    def test_flush_truncates_log(self, tmp_path):
        path = str(tmp_path / "s")
        with PersistentKVStore(path) as store:
            table = store.create_table(TableSpec(name="t", n_parts=1))
            table.put_many((i, i) for i in range(10))
            table.flush()
            log = os.path.join(path, "tables", "t", "part-0000", "write.log")
            assert os.path.getsize(log) == 0

    def test_torn_log_tail_ignored(self, tmp_path):
        path = str(tmp_path / "s")
        with PersistentKVStore(path) as store:
            table = store.create_table(TableSpec(name="t", n_parts=1))
            table.put("a", 1)
            table.put("b", 2)
        log = os.path.join(path, "tables", "t", "part-0000", "write.log")
        with open(log, "ab") as fh:
            fh.write(b"\xff\xff\xff\x7f partial")  # huge length, truncated body
        with PersistentKVStore(path) as store:
            table = store.get_table("t")
            assert table.get("a") == 1
            assert table.get("b") == 2

    def test_dropped_table_gone_after_reopen(self, tmp_path):
        path = str(tmp_path / "s")
        with PersistentKVStore(path) as store:
            store.create_table(TableSpec(name="t"))
            store.drop_table("t")
        with PersistentKVStore(path) as store:
            assert "t" not in store.list_tables()

    def test_table_specs_survive(self, tmp_path):
        path = str(tmp_path / "s")
        with PersistentKVStore(path) as store:
            store.create_table(TableSpec(name="t", n_parts=5, ordered=True))
        with PersistentKVStore(path) as store:
            table = store.get_table("t")
            assert table.n_parts == 5
            assert table.ordered


class TestRestrictions:
    def test_custom_key_hash_table_is_ephemeral(self, tmp_path):
        """A key_hash cannot be persisted, so such tables work within a
        session but vanish on reopen (how the EBSP engine's private
        transport tables use this store)."""
        path = str(tmp_path / "s")
        with PersistentKVStore(path) as store:
            table = store.create_table(TableSpec(name="t", key_hash=lambda k: 0))
            table.put("k", "v")
            assert table.get("k") == "v"
        with PersistentKVStore(path) as store:
            assert "t" not in store.list_tables()

    def test_read_records_missing_file(self, tmp_path):
        assert _read_records(str(tmp_path / "nope")) == []
