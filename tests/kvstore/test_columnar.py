"""ColumnarTable: typed column batches over the narrow Table SPI.

The view must work identically over every store implementation — it
only ever calls ``put_many``/``get_many``/``delete_many``/enumeration,
so the ``store`` fixture is the whole conformance argument.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.kvstore import ColumnSchema, ColumnarTable
from repro.kvstore.api import TableSpec

SINGLE = ColumnSchema(key_dtype="int64", fields=(("rank", "float64"),))
MULTI = ColumnSchema(
    key_dtype="int64", fields=(("rank", "float64"), ("degree", "int64"))
)


def _view(store, schema, name="cols"):
    return ColumnarTable(store.create_table(TableSpec(name=name, n_parts=4)), schema)


class TestColumnSchema:
    def test_requires_a_field(self):
        with pytest.raises(ValueError, match="at least one"):
            ColumnSchema(key_dtype="int64", fields=())

    def test_rejects_duplicate_field_names(self):
        with pytest.raises(ValueError, match="duplicate"):
            ColumnSchema(
                key_dtype="int64", fields=(("x", "float64"), ("x", "int64"))
            )

    def test_field_names_in_order(self):
        assert MULTI.field_names == ["rank", "degree"]


class TestSingleField:
    def test_put_get_roundtrip(self, store):
        view = _view(store, SINGLE)
        keys = np.arange(32, dtype=np.int64)
        view.put_batch(keys, keys * 0.5)
        batch = view.get_batch(keys)
        assert batch.keys.dtype == np.int64
        assert batch["rank"].dtype == np.float64
        np.testing.assert_array_equal(batch["rank"], keys * 0.5)

    def test_rows_store_bare_scalars(self, store):
        view = _view(store, SINGLE)
        view.put_batch([3, 4], [0.25, 0.75])
        # per-key readers of the same table see plain floats, not tuples
        assert view.table.get(3) == 0.25
        assert isinstance(view.table.get(4), float)

    def test_get_batch_default_fills_holes(self, store):
        view = _view(store, SINGLE)
        view.put_batch([1], [9.0])
        batch = view.get_batch([1, 2], default=-1.0)
        assert batch["rank"].tolist() == [9.0, -1.0]

    def test_get_batch_absent_key_raises_without_default(self, store):
        view = _view(store, SINGLE)
        view.put_batch([1], [9.0])
        with pytest.raises(KeyError, match="99"):
            view.get_batch([1, 99])

    def test_delete_batch(self, store):
        view = _view(store, SINGLE)
        keys = np.arange(8, dtype=np.int64)
        view.put_batch(keys, np.ones(8))
        view.delete_batch(keys[:4])
        assert view.size() == 4
        assert sorted(view.read_all().keys.tolist()) == [4, 5, 6, 7]


class TestMultiField:
    def test_roundtrip_and_tuple_storage(self, store):
        view = _view(store, MULTI)
        keys = np.asarray([5, 2, 9], dtype=np.int64)
        view.put_batch(keys, [0.1, 0.2, 0.3], [10, 20, 30])
        assert view.table.get(2) == (0.2, 20)
        batch = view.get_batch([2, 5, 9])
        assert batch["rank"].tolist() == [0.2, 0.1, 0.3]
        assert batch["degree"].tolist() == [20, 10, 30]
        assert list(batch.rows()) == [(2, 0.2, 20), (5, 0.1, 10), (9, 0.3, 30)]

    def test_column_count_mismatch_raises(self, store):
        view = _view(store, MULTI)
        with pytest.raises(ValueError, match="2 fields"):
            view.put_batch([1], [0.5])

    def test_column_length_mismatch_raises(self, store):
        view = _view(store, MULTI)
        with pytest.raises(ValueError, match="degree"):
            view.put_batch([1, 2], [0.5, 0.6], [7])


class TestPartReads:
    def test_read_all_sorted_ascending(self, store):
        view = _view(store, SINGLE)
        keys = np.asarray([9, 1, 5, 3], dtype=np.int64)
        view.put_batch(keys, keys.astype(np.float64))
        batch = view.read_all()
        assert batch.keys.tolist() == [1, 3, 5, 9]
        assert batch["rank"].tolist() == [1.0, 3.0, 5.0, 9.0]

    def test_read_part_covers_the_table(self, store):
        view = _view(store, SINGLE)
        keys = np.arange(40, dtype=np.int64)
        view.put_batch(keys, keys.astype(np.float64))
        seen = []
        for part in range(view.n_parts):
            batch = view.read_part(part)
            assert batch.keys.tolist() == sorted(batch.keys.tolist())
            assert (view.part_of_many(batch.keys) == part).all()
            seen.extend(batch.keys.tolist())
        assert sorted(seen) == keys.tolist()


class TestPartOfMany:
    def test_matches_per_key_routing(self, store):
        table = store.create_table(TableSpec(name="routing", n_parts=4))
        keys = np.arange(-50, 50, dtype=np.int64)
        vector = table.part_of_many(keys)
        assert vector.tolist() == [table.part_of(int(k)) for k in keys]

    def test_string_keys_fall_back_per_key(self, store):
        table = store.create_table(TableSpec(name="routing_s", n_parts=4))
        keys = np.asarray(["a", "bb", "ccc"], dtype=object)
        vector = table.part_of_many(keys)
        assert vector.tolist() == [table.part_of(k) for k in keys.tolist()]

    def test_single_part_is_all_zeros(self, store):
        table = store.create_table(TableSpec(name="one_part", n_parts=1))
        assert table.part_of_many(np.arange(10)).tolist() == [0] * 10
