"""Behaviour specific to the parallel debugging store (paper §V-A).

Pinned to the threaded runtime: these tests assert shared-memory
behaviour (zero-marshal collocated access, cross-part threading
barriers) that a process runtime intentionally does not provide.
Process-runtime behaviour is covered by ``tests/runtime/
test_process_runtime.py`` and the conformance suite run with
``RIPPLE_RUNTIME=process``.
"""

from __future__ import annotations

import threading

import pytest

from repro.kvstore.api import FnPairConsumer, FnPartConsumer, TableSpec
from repro.kvstore.partitioned import PartitionedKVStore


@pytest.fixture
def store():
    instance = PartitionedKVStore(n_partitions=4, runtime="threaded")
    yield instance
    instance.close()


class TestMarshalling:
    def test_cross_partition_ops_marshal(self, store):
        table = store.create_table(TableSpec(name="t", n_parts=4))
        before = store.stats.snapshot()["marshalled_objects"]
        # keys 0..3 land on parts 0..3; the client thread is on no
        # partition, so every op crosses a boundary
        for key in range(4):
            table.put(key, {"v": key})
        after = store.stats.snapshot()["marshalled_objects"]
        assert after > before

    def test_remote_get_returns_copy(self, store):
        table = store.create_table(TableSpec(name="t", n_parts=2))
        original = {"list": [1, 2, 3]}
        table.put(0, original)
        fetched = table.get(0)
        fetched["list"].append(4)
        assert table.get(0)["list"] == [1, 2, 3]

    def test_collocated_access_is_local(self, store):
        """Mobile code touching its own part must not marshal."""
        table = store.create_table(TableSpec(name="t", n_parts=4))
        table.put(1, "x")  # part 1

        def mobile(part_index, view):
            before = store.stats.snapshot()["marshalled_objects"]
            view.get(1)
            view.put(1, "y")
            after = store.stats.snapshot()["marshalled_objects"]
            return after - before

        # run_collocated itself marshals the result, but the inner ops don't
        assert table.run_collocated(1, mobile) == 0

    def test_collocated_sees_partition_marker(self, store):
        table = store.create_table(TableSpec(name="t", n_parts=4))
        marker = table.run_collocated(2, lambda i, v: store.runtime.current_worker())
        assert marker == 2


class TestParallelism:
    def test_enumerate_parts_runs_concurrently(self, store):
        table = store.create_table(TableSpec(name="t", n_parts=4))
        barrier = threading.Barrier(4, timeout=10)

        def process(part_index, view):
            # all four parts must be inside process_part at once for the
            # barrier to release; a serial implementation would deadlock
            barrier.wait()
            return 1

        total = table.enumerate_parts(FnPartConsumer(process, lambda a, b: a + b))
        assert total == 4

    def test_collocated_enumeration_of_own_table(self, store):
        """Mobile code may enumerate a table that has a part on its own
        partition (the inline path that avoids self-deadlock)."""
        table = store.create_table(TableSpec(name="t", n_parts=4))
        table.put_many((i, 1) for i in range(8))

        def mobile(part_index, view):
            return table.enumerate_parts(
                FnPartConsumer(lambda i, v: len(v), lambda a, b: a + b)
            )

        assert table.run_collocated(0, mobile) == 8

    def test_concurrent_puts_from_many_threads(self, store):
        table = store.create_table(TableSpec(name="t", n_parts=4))

        def worker(base):
            for i in range(100):
                table.put(base + i, base + i)

        threads = [threading.Thread(target=worker, args=(b * 1000,)) for b in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert table.size() == 400


class TestPartMapping:
    def test_more_parts_than_partitions(self, store):
        table = store.create_table(TableSpec(name="t", n_parts=10))
        table.put_many((i, i) for i in range(100))
        assert table.size() == 100
        assert sorted(k for k, _ in table.items()) == list(range(100))

    def test_tables_with_equal_parts_are_collocated(self, store):
        a = store.create_table(TableSpec(name="a", n_parts=4))
        b = store.create_table(TableSpec(name="b", like="a"))
        a.put(2, "in-a")
        b.put(2, "in-b")

        def mobile(part_index, view):
            # the co-partitioned table's same-numbered part is local:
            # reading it from here must not marshal
            before = store.stats.snapshot()["marshalled_objects"]
            value = b.get(2)
            after = store.stats.snapshot()["marshalled_objects"]
            return value, after - before

        value, marshals = a.run_collocated(a.part_of(2), mobile)
        assert value == "in-b"
        assert marshals == 0

    def test_custom_key_hash_controls_placement(self, store):
        table = store.create_table(
            TableSpec(name="t", n_parts=4, key_hash=lambda key: key[0])
        )
        assert table.part_of((3, "anything")) == 3
        assert table.part_of((1, "x")) == 1


class TestLifecycle:
    def test_close_idempotent(self, store):
        store.close()
        store.close()

    def test_context_manager(self, tmp_path):
        with PartitionedKVStore(n_partitions=2, runtime="threaded") as s:
            t = s.create_table(TableSpec(name="t"))
            t.put(1, 1)
            assert t.get(1) == 1

    def test_drop_removes_partition_data(self, store):
        table = store.create_table(TableSpec(name="t", n_parts=4))
        table.put_many((i, i) for i in range(10))
        store.drop_table("t")
        table2 = store.create_table(TableSpec(name="t", n_parts=4))
        assert table2.size() == 0

    def test_bad_partition_count(self):
        with pytest.raises(ValueError):
            PartitionedKVStore(n_partitions=0)
