"""Table mutation epochs: the versioning hook the result cache keys on."""

from __future__ import annotations

from repro.kvstore.api import TableSpec


def _make(store, name="epochs"):
    return store.create_table(TableSpec(name=name))


class TestMutationEpochs:
    def test_fresh_table_starts_at_zero(self, store):
        table = _make(store)
        assert table.mutation_epoch == 0

    def test_put_advances_the_epoch(self, store):
        table = _make(store)
        table.put(1, "a")
        first = table.mutation_epoch
        assert first > 0
        table.put(1, "b")
        assert table.mutation_epoch > first

    def test_reads_do_not_advance(self, store):
        table = _make(store)
        table.put(1, "a")
        epoch = table.mutation_epoch
        table.get(1)
        table.get(99)
        list(table.items())
        table.size()
        assert table.mutation_epoch == epoch

    def test_delete_advances(self, store):
        table = _make(store)
        table.put(1, "a")
        epoch = table.mutation_epoch
        table.delete(1)
        assert table.mutation_epoch > epoch

    def test_bulk_writes_advance(self, store):
        table = _make(store)
        epoch = table.mutation_epoch
        table.put_many((i, i * 10) for i in range(8))
        after_put = table.mutation_epoch
        assert after_put > epoch
        table.delete_many([0, 1, 2])
        assert table.mutation_epoch > after_put

    def test_clear_advances(self, store):
        table = _make(store)
        table.put(1, "a")
        epoch = table.mutation_epoch
        table.clear()
        assert table.mutation_epoch > epoch

    def test_epochs_are_per_table(self, store):
        a = _make(store, "epochs_a")
        b = _make(store, "epochs_b")
        a.put(1, "x")
        assert a.mutation_epoch > 0
        assert b.mutation_epoch == 0

    def test_note_mutation_is_public(self, store):
        # the service front door bumps epochs explicitly at completion
        # (process-runtime children write against forked handles)
        table = _make(store)
        epoch = table.mutation_epoch
        table.note_mutation()
        assert table.mutation_epoch == epoch + 1
