"""Live part migration under fire.

``test_migrate.py`` covers the offline copy helpers; this file pins the
*live* protocol (freeze → drain → copy → flip → unfreeze): migrations
racing concurrent writers must preserve every acknowledged write, and a
source worker SIGKILLed mid-migration must not lose data when the store
is crash-tolerant (the parent-side mirror is journal-complete).
"""

from __future__ import annotations

import os
import signal
import threading
import time

import pytest

from repro.kvstore.api import TableSpec
from repro.kvstore.partitioned import PartitionedKVStore
from repro.kvstore.replicated import ReplicatedKVStore
from repro.runtime import ProcessRuntime, RetryPolicy, ThreadedRuntime

N_PARTS = 4
PART = 0  # int keys ≡ 0 (mod 4) land here
TARGET = 2


def part_keys(count):
    return [PART + N_PARTS * i for i in range(count)]


def hammer(table, keys, stop, acked):
    """Write rounds of increasing values; record each write *after* the
    put returns — exactly the set migration must preserve."""
    round_num = 0
    while not stop.is_set():
        round_num += 1
        for key in keys:
            table.put(key, (round_num, key))
            acked[key] = (round_num, key)
        time.sleep(0.001)


def run_migration_race(store):
    table = store.create_table(TableSpec(name="data", n_parts=N_PARTS))
    keys = part_keys(8)
    for key in keys:
        table.put(key, (0, key))
    stop = threading.Event()
    acked = {}
    writer = threading.Thread(
        target=hammer, args=(table, keys, stop, acked), daemon=True
    )
    writer.start()
    try:
        time.sleep(0.05)
        report = store.migrate_part(PART, TARGET)
        time.sleep(0.05)  # writers keep going against the new owner
    finally:
        stop.set()
        writer.join(timeout=10)
    return table, report, acked


class TestConcurrentWriters:
    def test_threaded_store_flips_lane_and_keeps_writes(self):
        runtime = ThreadedRuntime(N_PARTS, name="mig")
        with PartitionedKVStore(n_partitions=N_PARTS, runtime=runtime) as store:
            table, report, acked = run_migration_race(store)
            assert runtime.worker_of(PART) == TARGET
            assert report["source"] == 0 and report["target"] == TARGET
            for key, value in acked.items():
                assert table.get(key) == value
            # the part still accepts writes after the flip
            table.put(PART, "post-migration")
            assert table.get(PART) == "post-migration"

    def test_process_store_moves_data_and_keeps_writes(self):
        runtime = ProcessRuntime(N_PARTS, name="mig")
        with PartitionedKVStore(n_partitions=N_PARTS, runtime=runtime) as store:
            table, report, acked = run_migration_race(store)
            assert runtime.worker_of(PART) == TARGET
            assert report["tables"] >= 1
            assert report["entries"] >= 8
            assert report["seconds"] > 0.0
            for key, value in acked.items():
                assert table.get(key) == value
            table.put(PART, "post-migration")
            assert table.get(PART) == "post-migration"

    def test_migrate_to_same_worker_is_noop(self):
        runtime = ThreadedRuntime(N_PARTS, name="mig")
        with PartitionedKVStore(n_partitions=N_PARTS, runtime=runtime) as store:
            table = store.create_table(TableSpec(name="data", n_parts=N_PARTS))
            table.put(PART, "stays")
            report = store.migrate_part(PART, runtime.worker_of(PART))
            assert report["tables"] == 0 and report["seconds"] == 0.0
            assert table.get(PART) == "stays"

    def test_target_validated(self):
        runtime = ThreadedRuntime(N_PARTS, name="mig")
        with PartitionedKVStore(n_partitions=N_PARTS, runtime=runtime) as store:
            with pytest.raises(ValueError):
                store.migrate_part(PART, N_PARTS)


class TestCrashDuringMigration:
    def test_source_sigkill_recovers_from_mirror(self):
        """The source dies right after the drain — the worst moment: the
        freshest copy of the part was only in its memory.  The journal
        protocol guarantees the parent mirror holds every acknowledged
        write, so the migration completes from there."""
        runtime = ProcessRuntime(
            N_PARTS, name="mig", retry_policy=RetryPolicy(max_respawns=N_PARTS)
        )
        with PartitionedKVStore(
            n_partitions=N_PARTS, runtime=runtime, crash_tolerance=True
        ) as store:
            table = store.create_table(TableSpec(name="data", n_parts=N_PARTS))
            keys = part_keys(20)
            for key in keys:
                table.put(key, key * 3)

            killed = []

            def fault(point, part):
                if point == "drained" and not killed:
                    pids = runtime.stats()["pids"]
                    source = runtime.worker_of(part)
                    os.kill(pids[source], signal.SIGKILL)
                    killed.append(source)

            store.migration_fault_hook = fault
            report = store.migrate_part(PART, TARGET)
            assert killed == [0]
            assert runtime.worker_of(PART) == TARGET
            assert report["entries"] == len(keys)
            for key in keys:
                assert table.get(key) == key * 3
            # the part is live on the new owner
            table.put(PART, "alive")
            assert table.get(PART) == "alive"

    def test_sigkill_without_crash_tolerance_raises(self):
        from repro.runtime import WorkerLostError

        runtime = ProcessRuntime(
            N_PARTS, name="mig", retry_policy=RetryPolicy(max_respawns=N_PARTS)
        )
        with PartitionedKVStore(n_partitions=N_PARTS, runtime=runtime) as store:
            table = store.create_table(TableSpec(name="data", n_parts=N_PARTS))
            table.put(PART, "doomed")

            def fault(point, part):
                if point == "drained":
                    pids = runtime.stats()["pids"]
                    os.kill(pids[runtime.worker_of(part)], signal.SIGKILL)

            store.migration_fault_hook = fault
            with pytest.raises(WorkerLostError):
                store.migrate_part(PART, TARGET)


class TestReplicatedMigration:
    def test_lane_flip_without_data_copy(self):
        store = ReplicatedKVStore(n_shards=4, replication=1)
        try:
            table = store.create_table(TableSpec(name="data", n_parts=N_PARTS))
            table.put(PART, "sharded")
            report = store.migrate_part(PART, TARGET)
            assert store.runtime.worker_of(PART) == TARGET
            assert report["tables"] == 0  # data is parent-resident
            assert table.get(PART) == "sharded"
            table.put(PART, "after")
            assert table.get(PART) == "after"
        finally:
            store.close()
