"""The in-memory part implementations (hash + ordered)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.kvstore.memory_table import HashPart, OrderedPart, make_part


class TestHashPart:
    def test_basic_ops(self):
        part = HashPart()
        part.put("k", 1)
        assert part.get("k") == 1
        assert part.delete("k")
        assert not part.delete("k")
        assert part.get("k") is None

    def test_none_rejected(self):
        with pytest.raises(ValueError):
            HashPart().put("k", None)

    def test_items_snapshot_safe_during_mutation(self):
        part = HashPart()
        for i in range(10):
            part.put(i, i)
        for key, _ in part.items():
            part.delete(key)  # must not raise
        assert len(part) == 0

    def test_len(self):
        part = HashPart()
        part.put(1, 1)
        part.put(2, 2)
        part.put(1, 10)  # overwrite
        assert len(part) == 2


class TestOrderedPart:
    def test_sorted_iteration(self):
        part = OrderedPart()
        for key in [5, 1, 9, 3]:
            part.put(key, key)
        assert [k for k, _ in part.items()] == [1, 3, 5, 9]

    def test_delete_hides_from_iteration(self):
        part = OrderedPart()
        for key in range(6):
            part.put(key, key)
        part.delete(3)
        assert [k for k, _ in part.items()] == [0, 1, 2, 4, 5]

    def test_reinsert_after_delete(self):
        part = OrderedPart()
        part.put(1, "a")
        part.delete(1)
        part.put(1, "b")
        assert part.get(1) == "b"
        assert list(part.items()) == [(1, "b")]

    def test_range_items(self):
        part = OrderedPart()
        for key in range(0, 20, 2):
            part.put(key, key)
        assert [k for k, _ in part.range_items(4, 11)] == [4, 6, 8, 10]
        assert [k for k, _ in part.range_items(hi=5)] == [0, 2, 4]
        assert [k for k, _ in part.range_items(lo=15)] == [16, 18]

    def test_range_skips_deleted(self):
        part = OrderedPart()
        for key in range(5):
            part.put(key, key)
        part.delete(2)
        assert [k for k, _ in part.range_items(1, 4)] == [1, 3]

    def test_first_key(self):
        part = OrderedPart()
        assert part.first_key() is None
        part.put(7, 7)
        part.put(3, 3)
        assert part.first_key() == 3
        part.delete(3)
        assert part.first_key() == 7

    def test_clear(self):
        part = OrderedPart()
        part.put(1, 1)
        part.clear()
        assert len(part) == 0
        assert list(part.items()) == []

    def test_interleaved_puts_and_scans(self):
        """Compaction is lazy; scans interleaved with inserts stay sorted."""
        part = OrderedPart()
        part.put(10, 10)
        assert [k for k, _ in part.items()] == [10]
        part.put(5, 5)
        assert [k for k, _ in part.items()] == [5, 10]
        part.put(7, 7)
        part.delete(10)
        assert [k for k, _ in part.items()] == [5, 7]


def test_make_part():
    assert isinstance(make_part(ordered=False), HashPart)
    assert isinstance(make_part(ordered=True), OrderedPart)


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["put", "delete"]),
            st.integers(min_value=0, max_value=20),
        ),
        max_size=60,
    )
)
def test_ordered_part_matches_sorted_dict(ops):
    """Model check: OrderedPart ≡ dict + sorted() under any op sequence."""
    part = OrderedPart()
    model = {}
    for op, key in ops:
        if op == "put":
            part.put(key, key * 2)
            model[key] = key * 2
        else:
            assert part.delete(key) == (key in model)
            model.pop(key, None)
    assert list(part.items()) == sorted(model.items())
    assert len(part) == len(model)
