"""Store-to-store migration over the SPI."""

from __future__ import annotations

import pytest

from repro.errors import StoreError
from repro.kvstore.api import TableSpec
from repro.kvstore.local import LocalKVStore
from repro.kvstore.migrate import copy_store, copy_table, verify_copy
from repro.kvstore.partitioned import PartitionedKVStore
from repro.kvstore.persistent import PersistentKVStore
from repro.kvstore.replicated import ReplicatedKVStore


@pytest.fixture
def populated():
    store = LocalKVStore(default_n_parts=3)
    plain = store.create_table(TableSpec(name="plain", n_parts=3))
    plain.put_many((i, f"v{i}") for i in range(40))
    ordered = store.create_table(TableSpec(name="ordered", n_parts=2, ordered=True))
    ordered.put_many((i, i * i) for i in range(10))
    store.create_table(TableSpec(name="__private", n_parts=2)).put("x", 1)
    yield store
    store.close()


class TestCopyTable:
    def test_contents_and_spec_preserved(self, populated):
        destination = LocalKVStore(default_n_parts=8)
        copied = copy_table(populated, destination, "ordered")
        assert copied == 10
        table = destination.get_table("ordered")
        assert table.n_parts == 2
        assert table.ordered
        assert verify_copy(populated, destination, "ordered")
        # range scans work on the copy, proving ordering carried over
        assert [k for k, _ in table.range_scan(3, 6)] == [3, 4, 5]

    def test_existing_destination_refused(self, populated):
        destination = LocalKVStore()
        destination.create_table(TableSpec(name="plain"))
        with pytest.raises(StoreError):
            copy_table(populated, destination, "plain")

    def test_key_hash_table_refused(self, populated):
        populated.create_table(TableSpec(name="hashed", n_parts=2, key_hash=lambda k: 0))
        with pytest.raises(StoreError):
            copy_table(populated, LocalKVStore(), "hashed")


class TestCopyStore:
    def test_private_tables_skipped(self, populated):
        destination = LocalKVStore()
        report = copy_store(populated, destination)
        assert sorted(report.tables_copied) == ["ordered", "plain"]
        assert "__private" in report.tables_skipped
        assert report.entries_copied == 50
        assert not destination.has_table("__private")

    def test_include_private(self, populated):
        destination = LocalKVStore()
        report = copy_store(populated, destination, include_private=True)
        assert "__private" in report.tables_copied

    @pytest.mark.parametrize("target_kind", ["partitioned", "replicated", "persistent"])
    def test_memory_to_every_store_kind(self, populated, target_kind, tmp_path):
        if target_kind == "partitioned":
            destination = PartitionedKVStore(n_partitions=3)
        elif target_kind == "replicated":
            destination = ReplicatedKVStore(n_shards=3, replication=1)
        else:
            destination = PersistentKVStore(str(tmp_path / "disk"))
        try:
            copy_store(populated, destination)
            assert verify_copy(populated, destination, "plain")
            assert verify_copy(populated, destination, "ordered")
        finally:
            destination.close()

    def test_round_trip_through_disk(self, populated, tmp_path):
        """memory → disk → reopen → memory: everything survives."""
        path = str(tmp_path / "disk")
        disk = PersistentKVStore(path)
        copy_store(populated, disk)
        disk.close()

        reopened = PersistentKVStore(path)
        back = LocalKVStore()
        report = copy_store(reopened, back)
        assert report.entries_copied == 50
        assert verify_copy(populated, back, "plain")
        reopened.close()


class TestColumnarCopy:
    """Migration must carry tables that back a columnar view: rows are
    plain scalars/tuples underneath, so a copy plus a fresh view over
    the destination reads back identical batches."""

    SCHEMA_FIELDS = (("rank", "float64"), ("degree", "int64"))

    def _make_columnar(self, store, name):
        from repro.kvstore.columnar import ColumnSchema, ColumnarTable

        table = store.create_table(TableSpec(name=name, n_parts=3))
        schema = ColumnSchema(key_dtype="int64", fields=self.SCHEMA_FIELDS)
        return ColumnarTable(table, schema), schema

    def test_copy_table_preserves_batches(self):
        import numpy as np

        from repro.kvstore.columnar import ColumnarTable

        source = LocalKVStore(default_n_parts=3)
        view, schema = self._make_columnar(source, "cols")
        keys = np.arange(30, dtype=np.int64)
        view.put_batch(keys, keys * 0.25, keys % 7)

        destination = LocalKVStore()
        copied = copy_table(source, destination, "cols")
        assert copied == 30
        assert verify_copy(source, destination, "cols")

        mirror = ColumnarTable(destination.get_table("cols"), schema)
        batch = mirror.read_all()
        assert np.array_equal(batch.keys, keys)
        assert np.array_equal(batch["rank"], keys * 0.25)
        assert np.array_equal(batch["degree"], keys % 7)
        assert batch["rank"].dtype == np.float64
        assert batch["degree"].dtype == np.int64

    def test_copy_store_carries_columnar_but_skips_private(self):
        import numpy as np

        from repro.kvstore.columnar import ColumnarTable

        source = LocalKVStore(default_n_parts=3)
        view, schema = self._make_columnar(source, "cols")
        view.put_batch(np.arange(10, dtype=np.int64), np.ones(10), np.zeros(10, dtype=np.int64))
        source.create_table(TableSpec(name="__scratch", n_parts=2)).put("x", 1)

        destination = LocalKVStore()
        report = copy_store(source, destination)
        assert "cols" in report.tables_copied
        assert "__scratch" in report.tables_skipped
        assert not destination.has_table("__scratch")

        mirror = ColumnarTable(destination.get_table("cols"), schema)
        part = mirror.read_part(0)
        assert np.array_equal(part.keys, np.arange(0, 10, 3, dtype=np.int64))
        assert np.array_equal(part["rank"], np.ones(4))


class TestVerify:
    def test_detects_difference(self, populated):
        destination = LocalKVStore()
        copy_table(populated, destination, "plain")
        destination.get_table("plain").put(0, "tampered")
        assert not verify_copy(populated, destination, "plain")

    def test_detects_missing_key(self, populated):
        destination = LocalKVStore()
        copy_table(populated, destination, "plain")
        destination.get_table("plain").delete(5)
        assert not verify_copy(populated, destination, "plain")

    def test_numpy_values(self):
        import numpy as np

        a, b = LocalKVStore(), LocalKVStore()
        for store in (a, b):
            store.create_table(TableSpec(name="t")).put("k", np.arange(5))
        assert verify_copy(a, b, "t")
        b.get_table("t").put("k", np.arange(6))
        assert not verify_copy(a, b, "t")
