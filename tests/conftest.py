"""Shared fixtures: every store implementation behind one parameter.

``store`` parametrizes a test over all four KVStore implementations —
the cheap way to keep them conformant to the SPI (and the test-suite
analog of the paper's store-portability claim).

Setting ``RIPPLE_RUNTIME=inline``, ``threaded``, or ``process`` forces
that worker runtime for every store the fixtures build, so the whole
conformance surface can be re-run deterministically (``RIPPLE_RUNTIME=
inline pytest tests/kvstore``) or on real cores (``RIPPLE_RUNTIME=
process pytest tests/kvstore``).  The local store is single-threaded by
contract and ignores the override.
"""

from __future__ import annotations

import os

import pytest

from repro.kvstore.local import LocalKVStore
from repro.kvstore.partitioned import PartitionedKVStore
from repro.kvstore.persistent import PersistentKVStore
from repro.kvstore.replicated import ReplicatedKVStore

STORE_KINDS = ["local", "partitioned", "replicated", "persistent"]


def runtime_override():
    """The worker-runtime kind forced via the environment, if any."""
    value = os.environ.get("RIPPLE_RUNTIME", "").strip().lower()
    return value if value in ("threaded", "inline", "process") else None


def make_store(kind: str, tmp_path, n_parts: int = 4):
    runtime = runtime_override()
    if kind == "local":
        return LocalKVStore(default_n_parts=n_parts)
    if kind == "partitioned":
        return PartitionedKVStore(n_partitions=n_parts, runtime=runtime)
    if kind == "replicated":
        return ReplicatedKVStore(n_shards=n_parts, replication=1, runtime=runtime)
    if kind == "persistent":
        return PersistentKVStore(
            str(tmp_path / "store"), default_n_parts=n_parts, runtime=runtime
        )
    raise ValueError(kind)


@pytest.fixture(params=STORE_KINDS)
def store(request, tmp_path):
    instance = make_store(request.param, tmp_path)
    yield instance
    instance.close()


@pytest.fixture(params=["local", "partitioned", "replicated"])
def fast_store(request, tmp_path):
    """In-memory stores only, for heavier workloads."""
    instance = make_store(request.param, tmp_path)
    yield instance
    instance.close()


@pytest.fixture
def local_store():
    instance = LocalKVStore(default_n_parts=4)
    yield instance
    instance.close()


@pytest.fixture
def partitioned_store():
    instance = PartitionedKVStore(n_partitions=4)
    yield instance
    instance.close()
