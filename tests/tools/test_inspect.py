"""The store-inspection CLI."""

from __future__ import annotations

import pytest

from repro.kvstore.api import TableSpec
from repro.kvstore.persistent import PersistentKVStore
from repro.tools.inspect import main


@pytest.fixture
def store_dir(tmp_path):
    path = str(tmp_path / "store")
    with PersistentKVStore(path) as store:
        plain = store.create_table(TableSpec(name="plain", n_parts=2))
        plain.put_many([("a", 1), ("b", 2), ("c", 3)])
        ordered = store.create_table(TableSpec(name="ordered", n_parts=2, ordered=True))
        ordered.put_many((i, i * i) for i in range(10))
    return path


class TestInspect:
    def test_list_tables(self, store_dir, capsys):
        assert main([store_dir]) == 0
        out = capsys.readouterr().out
        assert "plain: 3 entries" in out
        assert "ordered: 10 entries" in out

    def test_table_summary(self, store_dir, capsys):
        assert main([store_dir, "plain"]) == 0
        out = capsys.readouterr().out
        assert "3 entries" in out and "2 parts" in out

    def test_items_peek(self, store_dir, capsys):
        assert main([store_dir, "plain", "--items", "2"]) == 0
        out = capsys.readouterr().out
        assert "... and 1 more" in out

    def test_get_present(self, store_dir, capsys):
        assert main([store_dir, "plain", "--get", "a"]) == 0
        assert "'a': 1" in capsys.readouterr().out

    def test_get_absent(self, store_dir, capsys):
        assert main([store_dir, "plain", "--get", "zzz"]) == 1
        assert "<absent>" in capsys.readouterr().out

    def test_range_scan(self, store_dir, capsys):
        assert main([store_dir, "ordered", "--range", "3", "6"]) == 0
        out = capsys.readouterr().out
        assert "3: 9" in out and "5: 25" in out and "6: 36" not in out

    def test_range_on_unordered_fails(self, store_dir, capsys):
        assert main([store_dir, "plain", "--range", "0", "5"]) == 1

    def test_unknown_table(self, store_dir, capsys):
        assert main([store_dir, "ghost"]) == 1

    def test_empty_store(self, tmp_path, capsys):
        path = str(tmp_path / "fresh")
        PersistentKVStore(path).close()
        assert main([path]) == 0
        assert "(no tables)" in capsys.readouterr().out

    def test_stats_include_worker_runtime(self, store_dir, capsys):
        assert main([store_dir, "--stats"]) == 0
        out = capsys.readouterr().out
        assert "store I/O stats:" in out
        assert "worker runtime:" in out
        assert "inline" in out
        assert "tasks run:" in out
