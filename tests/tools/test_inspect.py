"""The store-inspection CLI."""

from __future__ import annotations

import json

import pytest

from repro.kvstore.api import TableSpec
from repro.kvstore.persistent import PersistentKVStore
from repro.runtime.shipping import shippable
from repro.tools.inspect import main


@shippable
def _worker_pid() -> int:
    import os

    return os.getpid()


@pytest.fixture
def store_dir(tmp_path):
    path = str(tmp_path / "store")
    with PersistentKVStore(path) as store:
        plain = store.create_table(TableSpec(name="plain", n_parts=2))
        plain.put_many([("a", 1), ("b", 2), ("c", 3)])
        ordered = store.create_table(TableSpec(name="ordered", n_parts=2, ordered=True))
        ordered.put_many((i, i * i) for i in range(10))
    return path


class TestInspect:
    def test_list_tables(self, store_dir, capsys):
        assert main([store_dir]) == 0
        out = capsys.readouterr().out
        assert "plain: 3 entries" in out
        assert "ordered: 10 entries" in out

    def test_table_summary(self, store_dir, capsys):
        assert main([store_dir, "plain"]) == 0
        out = capsys.readouterr().out
        assert "3 entries" in out and "2 parts" in out

    def test_items_peek(self, store_dir, capsys):
        assert main([store_dir, "plain", "--items", "2"]) == 0
        out = capsys.readouterr().out
        assert "... and 1 more" in out

    def test_get_present(self, store_dir, capsys):
        assert main([store_dir, "plain", "--get", "a"]) == 0
        assert "'a': 1" in capsys.readouterr().out

    def test_get_absent(self, store_dir, capsys):
        assert main([store_dir, "plain", "--get", "zzz"]) == 1
        assert "<absent>" in capsys.readouterr().out

    def test_range_scan(self, store_dir, capsys):
        assert main([store_dir, "ordered", "--range", "3", "6"]) == 0
        out = capsys.readouterr().out
        assert "3: 9" in out and "5: 25" in out and "6: 36" not in out

    def test_range_on_unordered_fails(self, store_dir, capsys):
        assert main([store_dir, "plain", "--range", "0", "5"]) == 1

    def test_unknown_table(self, store_dir, capsys):
        assert main([store_dir, "ghost"]) == 1

    def test_empty_store(self, tmp_path, capsys):
        path = str(tmp_path / "fresh")
        PersistentKVStore(path).close()
        assert main([path]) == 0
        assert "(no tables)" in capsys.readouterr().out

    def test_stats_include_worker_runtime(self, store_dir, capsys):
        assert main([store_dir, "--stats"]) == 0
        out = capsys.readouterr().out
        assert "store I/O stats:" in out
        assert "worker runtime:" in out
        assert "inline" in out
        assert "tasks run:" in out

    def test_stats_label_process_backend_with_pid_map(self, tmp_path, capsys):
        """--stats names the backend and, on a process runtime with
        started workers, prints the worker→pid map."""
        from repro.runtime import ProcessRuntime
        from repro.tools.inspect import _print_stats

        runtime = ProcessRuntime(2, name="t")
        try:
            pid = runtime.submit(0, _worker_pid).result(timeout=30)
            with PersistentKVStore(
                str(tmp_path / "s"), default_n_parts=2, runtime=runtime
            ) as store:
                _print_stats(store)
        finally:
            runtime.close()
        out = capsys.readouterr().out
        assert "kind:             process" in out
        assert "worker pids:" in out
        assert f"0→{pid}" in out

    def test_stats_without_job_history_omit_job_counters(self, store_dir, capsys):
        assert main([store_dir, "--stats"]) == 0
        assert "job counters" not in capsys.readouterr().out

    def test_stats_include_cumulative_job_counters(self, tmp_path, capsys):
        """Engines fold their headline counters into the store; the CLI
        reports them across jobs and store reopens."""
        from repro.ebsp.loaders import MessageListLoader
        from repro.ebsp.runner import run_job
        from tests.ebsp.jobs import TestJob

        def fn(ctx):
            for value in ctx.input_messages():
                ctx.write_state(0, value)
                if value < 3:
                    ctx.output_message(ctx.key, value + 1)
            return False

        path = str(tmp_path / "jobstore")
        with PersistentKVStore(path, default_n_parts=4) as store:
            run_job(
                store,
                TestJob(fn, loaders=[MessageListLoader([(0, 1)])]),
                synchronize=True,
            )
        assert main([path, "--stats"]) == 0
        out = capsys.readouterr().out
        assert "job counters (cumulative):" in out
        assert "jobs run:              1" in out
        assert "parts skipped:" in out
        assert "part-steps run:" in out
        assert "writeback batches:" in out


def _traced_store(tmp_path) -> str:
    """A persistent store that has run one traced job."""
    from repro.ebsp.loaders import MessageListLoader
    from repro.ebsp.runner import run_job
    from tests.ebsp.jobs import TestJob

    def fn(ctx):
        for value in ctx.input_messages():
            ctx.write_state(0, value)
            if value < 2:
                ctx.output_message(ctx.key, value + 1)
        return False

    path = str(tmp_path / "traced")
    with PersistentKVStore(path, default_n_parts=4) as store:
        run_job(
            store,
            TestJob(fn, loaders=[MessageListLoader([(i, 0) for i in range(8)])]),
            synchronize=True,
            trace=True,
        )
    return path


class TestTraceAndMetricsCommands:
    def test_trace_summary(self, tmp_path, capsys):
        path = _traced_store(tmp_path)
        assert main([path, "trace"]) == 0
        out = capsys.readouterr().out
        assert "trace for job 1:" in out
        assert "lanes:" in out and "driver" in out
        assert "superstep" in out

    def test_trace_latest_and_explicit_job_agree(self, tmp_path, capsys):
        path = _traced_store(tmp_path)
        assert main([path, "trace", "latest"]) == 0
        latest = capsys.readouterr().out
        assert main([path, "trace", "1"]) == 0
        assert capsys.readouterr().out == latest

    def test_trace_out_writes_valid_perfetto_json(self, tmp_path, capsys):
        from repro.obs.export import validate_chrome_trace

        path = _traced_store(tmp_path)
        out_file = str(tmp_path / "job.trace.json")
        assert main([path, "trace", "--out", out_file]) == 0
        with open(out_file) as fh:
            doc = json.load(fh)
        assert validate_chrome_trace(doc) == []

    def test_trace_json_mode(self, tmp_path, capsys):
        path = _traced_store(tmp_path)
        assert main([path, "trace", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert "traceEvents" in doc

    def test_metrics_command(self, tmp_path, capsys):
        path = _traced_store(tmp_path)
        assert main([path, "metrics"]) == 0
        out = capsys.readouterr().out
        assert "metrics for job 1:" in out
        assert "compute_invocations" in out
        assert "engine.compute_seconds" in out

    def test_metrics_json_mode(self, tmp_path, capsys):
        path = _traced_store(tmp_path)
        assert main([path, "metrics", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["job"] == 1
        assert doc["metrics"]["compute_invocations"]["type"] == "counter"

    def test_unknown_job_fails(self, tmp_path, capsys):
        path = _traced_store(tmp_path)
        assert main([path, "trace", "99"]) == 1
        assert "no trace recorded" in capsys.readouterr().err

    def test_no_traces_recorded(self, store_dir, capsys):
        assert main([store_dir, "trace"]) == 1
        assert "no traced jobs" in capsys.readouterr().err

    def test_job_arg_rejected_for_plain_tables(self, store_dir, capsys):
        assert main([store_dir, "plain", "7"]) == 2

    def test_stats_json(self, tmp_path, capsys):
        path = _traced_store(tmp_path)
        assert main([path, "--stats", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["serde"]["batched_requests"] >= 0
        assert doc["runtime"]["n_workers"] > 0
        assert doc["jobs"]["jobs"] == 1

    def test_stats_json_on_table_summary(self, store_dir, capsys):
        assert main([store_dir, "plain", "--stats", "--json"]) == 0
        out = capsys.readouterr().out
        # the table summary prints first, the JSON document last
        assert "3 entries" in out
        doc = json.loads(out.splitlines()[-1])
        assert "serde" in doc
