"""Multiple jobs sharing one store (the multi-analytics scenario the
paper's architecture section motivates: 'running a new analysis need
not involve changing existing data, it could use new tables')."""

from __future__ import annotations

import threading

import pytest

from repro.ebsp.loaders import DictStateLoader, EnableKeysLoader, MessageListLoader
from repro.ebsp.runner import run_job
from repro.kvstore.api import TableSpec
from repro.kvstore.partitioned import PartitionedKVStore

from tests.ebsp.jobs import TestJob


@pytest.fixture
def store():
    instance = PartitionedKVStore(n_partitions=4)
    yield instance
    instance.close()


def counting_job(state_table: str, length: int):
    def fn(ctx):
        for value in ctx.input_messages():
            ctx.write_state(0, value)
            if value < length:
                ctx.output_message(ctx.key, value + 1)
        return False

    return TestJob(
        fn,
        state_tables=[state_table],
        loaders=[MessageListLoader([(0, 1)])],
    )


class TestConcurrentJobs:
    def test_sequential_jobs_reuse_store(self, store):
        run_job(store, counting_job("job_a", 5))
        run_job(store, counting_job("job_b", 9))
        assert store.get_table("job_a").get(0) == 5
        assert store.get_table("job_b").get(0) == 9

    def test_parallel_jobs_do_not_interfere(self, store):
        """Two jobs run simultaneously on disjoint state tables; each
        job's private transport table keeps their messages apart."""
        errors = []

        def run_one(name, length):
            try:
                run_job(store, counting_job(name, length))
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [
            threading.Thread(target=run_one, args=("left", 20)),
            threading.Thread(target=run_one, args=("right", 30)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert store.get_table("left").get(0) == 20
        assert store.get_table("right").get(0) == 30

    def test_second_job_reads_first_jobs_output(self, store):
        """Job 2 uses job 1's state table read-only — the factored-state
        integration story of Section II."""
        run_job(store, counting_job("phase1", 7))

        collected = []

        def fn(ctx):
            collected.append(ctx.read_state(1))  # read phase1's output
            ctx.write_state(0, "done")
            return False

        job = TestJob(
            fn,
            state_tables=["phase2", "phase1"],
            loaders=[EnableKeysLoader([0])],
        )
        run_job(store, job)
        assert collected == [7]
