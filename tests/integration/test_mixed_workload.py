"""EBSP sharing the runtime with an OLTP-style workload (§VII).

The paper's closing future-work item: "the issues that arise when EBSP
shares a runtime with some other workload (such as OLTP)."  These
tests pin the basic safety story on the current architecture: point
get/put traffic hammering one table while an analytics job runs over
others, on the same store — both must complete, both must be correct,
and the short-op/long-op thread split of the parallel debugging store
means point operations are never queued behind a long enumeration.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.apps.pagerank import (
    PageRankConfig,
    build_pagerank_table,
    pagerank_direct,
    read_ranks,
    reference_pagerank,
)
from repro.graph.generators import power_law_directed_graph
from repro.kvstore.api import TableSpec
from repro.kvstore.partitioned import PartitionedKVStore


@pytest.fixture
def store():
    instance = PartitionedKVStore(n_partitions=4)
    yield instance
    instance.close()


class TestOltpAlongsideAnalytics:
    def test_both_complete_correctly(self, store):
        adjacency = power_law_directed_graph(200, 800, seed=13)
        config = PageRankConfig(iterations=5)
        n = build_pagerank_table(store, "graph", adjacency)
        oltp = store.create_table(TableSpec(name="accounts"))
        oltp.put_many((i, {"balance": 100}) for i in range(50))

        stop = threading.Event()
        oltp_ops = {"count": 0}
        errors: list = []

        def oltp_worker():
            try:
                i = 0
                while not stop.is_set():
                    key = i % 50
                    row = oltp.get(key)
                    oltp.put(key, {"balance": row["balance"] + 1})
                    oltp_ops["count"] += 1
                    i += 1
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        thread = threading.Thread(target=oltp_worker)
        thread.start()
        try:
            pagerank_direct(store, "graph", n, config)
        finally:
            stop.set()
            thread.join(timeout=10)

        assert errors == []
        assert oltp_ops["count"] > 0, "OLTP traffic should have progressed"
        # OLTP data consistent: every increment applied
        total = sum(row["balance"] for _, row in oltp.items())
        assert total == 50 * 100 + oltp_ops["count"]
        # analytics correct despite the concurrent traffic
        reference = reference_pagerank(adjacency, config)
        ranks = read_ranks(store, "graph")
        for v, expected in reference.items():
            assert ranks[v] == pytest.approx(expected, abs=1e-12)

    def test_point_ops_not_starved_by_enumeration(self, store):
        """The two-thread partition design: a long-running enumeration
        must not block short request-response operations."""
        table = store.create_table(TableSpec(name="t", n_parts=4))
        table.put_many((i, i) for i in range(40))
        slow_started = threading.Event()
        release = threading.Event()

        from repro.kvstore.api import FnPartConsumer

        def slow_scan():
            def process(part, view):
                if part == 0:
                    slow_started.set()
                    release.wait(10)
                return 0

            table.enumerate_parts(FnPartConsumer(process, lambda a, b: 0))

        scanner = threading.Thread(target=slow_scan)
        scanner.start()
        try:
            assert slow_started.wait(5)
            # part 0's long-op thread is stuck; a get against part 0 goes
            # through the short-op thread and must return promptly
            start = time.monotonic()
            assert table.get(0) == 0  # key 0 lives in part 0
            assert time.monotonic() - start < 1.0
        finally:
            release.set()
            scanner.join(timeout=10)
