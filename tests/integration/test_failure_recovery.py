"""End-to-end fault tolerance: a real application under injected
failures produces exactly the results of a clean run (§IV-A outline)."""

from __future__ import annotations

import pytest

from repro.apps.pagerank import (
    PageRankConfig,
    build_pagerank_table,
    pagerank_direct,
    read_ranks,
    reference_pagerank,
)
from repro.ebsp.recovery import FailureInjector
from repro.graph.generators import power_law_directed_graph
from repro.kvstore.local import LocalKVStore
from repro.kvstore.replicated import ReplicatedKVStore


class TestPageRankUnderFailures:
    def test_ranks_identical_despite_crashes(self):
        adjacency = power_law_directed_graph(60, 240, seed=17)
        config = PageRankConfig(iterations=5)
        reference = reference_pagerank(adjacency, config)

        injector = FailureInjector()
        for part in range(4):
            injector.schedule(part=part, step=2, times=1)
        injector.schedule(part=1, step=4, times=2)

        store = LocalKVStore(default_n_parts=4)
        n = build_pagerank_table(store, "pr", adjacency)
        result = pagerank_direct(
            store, "pr", n, config, fault_tolerance=True, failure_injector=injector
        )
        assert injector.failures_injected == 6
        assert result.counters["part_step_retries"] == 6
        ranks = read_ranks(store, "pr")
        for v, expected in reference.items():
            assert ranks[v] == pytest.approx(expected, abs=1e-12)


class TestReplicatedStoreFailover:
    def test_job_output_survives_primary_loss(self):
        """Run a job, kill every primary, promote backups: the final
        state must be fully intact (synchronous replication)."""
        adjacency = power_law_directed_graph(50, 150, seed=23)
        config = PageRankConfig(iterations=3)
        store = ReplicatedKVStore(n_shards=4, replication=1)
        try:
            n = build_pagerank_table(store, "pr", adjacency)
            pagerank_direct(store, "pr", n, config)
            before = read_ranks(store, "pr")
            for shard in range(4):
                store.fail_primary(shard)
                assert store.promote_backup(shard) == 0
            after = read_ranks(store, "pr")
            assert after == before
        finally:
            store.close()
