"""Cross-layer validation: PageRank through the *generic* MapReduce
layer (Figure 2's "MR clients" path) agrees with the direct EBSP
variant and the dense reference.

The generic layer exposes no aggregators to mappers/reducers, so sink
mass cannot be routed the way §V-A's variants do — the workload here
is therefore sink-free (every vertex keeps at least one out-edge),
which the other two implementations handle identically.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.pagerank import (
    PageRankConfig,
    build_pagerank_table,
    pagerank_direct,
    read_ranks,
    reference_pagerank,
)
from repro.graph.generators import power_law_directed_graph
from repro.kvstore.api import TableSpec
from repro.kvstore.local import LocalKVStore
from repro.mapreduce import IteratedMapReduce, Mapper, MapReduceSpec, Reducer


def sink_free_graph(n_vertices: int, n_edges: int, seed: int):
    adjacency = power_law_directed_graph(n_vertices, n_edges, seed=seed)
    out = {}
    for v, targets in adjacency.items():
        targets = np.unique(targets)
        if len(targets) == 0:
            targets = np.asarray([(v + 1) % n_vertices], dtype=np.int64)
        out[v] = targets
    return out


class _PRMapper(Mapper):
    def __init__(self, damping: float, n: int):
        self._d = damping
        self._n = n

    def map(self, key, value, emit):
        edges, rank = value
        if rank is None:
            rank = 1.0 / self._n
        share = rank / len(edges)
        for target in edges.tolist():
            emit(target, ("C", share))
        emit(key, ("S", edges))


class _PRReducer(Reducer):
    def __init__(self, damping: float, n: int):
        self._d = damping
        self._n = n

    def reduce(self, key, values, emit):
        edges = None
        incoming = 0.0
        for tag, payload in values:
            if tag == "S":
                edges = payload
            else:
                incoming += payload
        new_rank = (1.0 - self._d) / self._n + self._d * incoming
        emit(key, (edges, new_rank))


def combine(m1, m2):
    if m1[0] == "C" and m2[0] == "C":
        return ("C", m1[1] + m2[1])
    return None  # leave the structure carrier alone


def test_mapreduce_layer_pagerank_matches_direct_variant():
    n, e = 100, 500
    adjacency = sink_free_graph(n, e, seed=41)
    config = PageRankConfig(iterations=6)

    # --- through the generic MapReduce layer -------------------------------
    mr_store = LocalKVStore(default_n_parts=4)
    table = mr_store.create_table(TableSpec(name="pr"))
    table.put_many((v, (targets, None)) for v, targets in adjacency.items())
    driver = IteratedMapReduce(
        lambda i: MapReduceSpec(
            _PRMapper(config.damping, n), _PRReducer(config.damping, n), combiner=combine
        ),
        "pr",
        max_iterations=config.iterations,
    )
    outcome = driver.run(mr_store)
    assert outcome.iterations == config.iterations
    # the structural price the paper quantifies: 2 barriers per iteration
    assert outcome.total_barriers == 2 * config.iterations
    mr_ranks = {v: value[1] for v, value in mr_store.get_table("pr").items()}

    # --- the direct EBSP variant -------------------------------------------
    direct_store = LocalKVStore(default_n_parts=4)
    build_pagerank_table(direct_store, "pr", adjacency)
    pagerank_direct(direct_store, "pr", n, config)
    direct_ranks = read_ranks(direct_store, "pr")

    # --- dense reference ------------------------------------------------------
    reference = reference_pagerank(adjacency, config)

    for v in reference:
        assert mr_ranks[v] == pytest.approx(reference[v], abs=1e-12)
        assert direct_ranks[v] == pytest.approx(reference[v], abs=1e-12)
