"""EBSP jobs over the disk-backed store, including crash-and-reopen."""

from __future__ import annotations

import pytest

from repro.apps.pagerank import (
    PageRankConfig,
    build_pagerank_table,
    pagerank_direct,
    read_ranks,
)
from repro.graph.generators import power_law_directed_graph
from repro.kvstore.persistent import PersistentKVStore


def test_job_results_survive_store_reopen(tmp_path):
    """Run an analytics job, close the store, reopen: the final state
    tables (the job's durable output) are intact and readable."""
    path = str(tmp_path / "store")
    adjacency = power_law_directed_graph(60, 240, seed=3)
    config = PageRankConfig(iterations=4)

    with PersistentKVStore(path, default_n_parts=3) as store:
        n = build_pagerank_table(store, "pr", adjacency)
        pagerank_direct(store, "pr", n, config)
        expected = read_ranks(store, "pr")

    with PersistentKVStore(path, default_n_parts=3) as store:
        assert "pr" in store.list_tables()
        ranks = read_ranks(store, "pr")
        assert ranks == expected
        # no engine-private tables leaked into the durable catalog
        assert not any(name.startswith("__ebsp") for name in store.list_tables())


def test_second_job_runs_on_reopened_store(tmp_path):
    """The reopened store is a fully working substrate, not an archive."""
    path = str(tmp_path / "store")
    adjacency = power_law_directed_graph(40, 160, seed=5)
    config = PageRankConfig(iterations=3)

    with PersistentKVStore(path, default_n_parts=3) as store:
        n = build_pagerank_table(store, "pr", adjacency)
        pagerank_direct(store, "pr", n, config)

    with PersistentKVStore(path, default_n_parts=3) as store:
        # rerun from the persisted structure: ranks are refreshed in place
        first = read_ranks(store, "pr")
        pagerank_direct(store, "pr", 40, config)
        second = read_ranks(store, "pr")
        assert set(first) == set(second)
