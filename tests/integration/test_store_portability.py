"""Figure 2's claim, executable: the same jobs run unchanged — and
produce identical results — over every store implementation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.pagerank import (
    PageRankConfig,
    build_pagerank_table,
    pagerank_direct,
    read_ranks,
)
from repro.apps.summa import BlockGrid, summa_multiply
from repro.graph.generators import power_law_directed_graph
from repro.mapreduce import Mapper, MapReduceSpec, Reducer, run_mapreduce
from repro.kvstore.api import TableSpec

from tests.conftest import STORE_KINDS, make_store


class _WC(Mapper):
    def map(self, key, value, emit):
        for word in value.split():
            emit(word, 1)


class _Sum(Reducer):
    def reduce(self, key, values, emit):
        emit(key, sum(values))


def test_wordcount_identical_across_stores(tmp_path):
    results = {}
    for kind in STORE_KINDS:
        store = make_store(kind, tmp_path / kind)
        try:
            docs = store.create_table(TableSpec(name="docs"))
            docs.put_many([(i, f"w{i % 3} common") for i in range(12)])
            run_mapreduce(store, MapReduceSpec(_WC(), _Sum()), "docs", "counts")
            results[kind] = dict(store.get_table("counts").items())
        finally:
            store.close()
    baseline = results["local"]
    assert baseline["common"] == 12
    for kind, counts in results.items():
        assert counts == baseline, f"{kind} diverged"


def test_pagerank_identical_across_stores(tmp_path):
    adjacency = power_law_directed_graph(80, 320, seed=21)
    config = PageRankConfig(iterations=4)
    results = {}
    for kind in STORE_KINDS:
        store = make_store(kind, tmp_path / kind)
        try:
            n = build_pagerank_table(store, "pr", adjacency)
            pagerank_direct(store, "pr", n, config)
            results[kind] = read_ranks(store, "pr")
        finally:
            store.close()
    baseline = results["local"]
    for kind, ranks in results.items():
        for v, expected in baseline.items():
            assert ranks[v] == pytest.approx(expected, abs=1e-12), kind


def test_summa_identical_across_stores(tmp_path):
    rng = np.random.default_rng(31)
    a = rng.standard_normal((12, 9))
    b = rng.standard_normal((9, 15))
    for kind in STORE_KINDS:
        store = make_store(kind, tmp_path / kind, n_parts=3)
        try:
            c, _ = summa_multiply(store, a, b, BlockGrid(3, 3, 3), synchronize=True)
            assert np.allclose(c, a @ b), kind
        finally:
            store.close()
