"""Properties of the BSP-ified SUMMA schedule over arbitrary grids."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.apps.summa import BlockGrid, multiplications_per_step, schedule_length, summa_multiply
from repro.kvstore.local import LocalKVStore

grids = st.tuples(
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=1, max_value=5),
).flatmap(
    lambda mn: st.tuples(
        st.just(mn[0]),
        st.just(mn[1]),
        st.integers(min_value=1, max_value=min(mn)),
    )
)


@given(grids)
def test_total_multiplications(grid):
    m, n, l = grid
    assert sum(multiplications_per_step(m, n, l)) == m * n * l


@given(grids)
def test_no_step_exceeds_component_count(grid):
    """≤1 multiply per component per step bounds every step by M·N."""
    m, n, l = grid
    assert all(0 <= muls <= m * n for muls in multiplications_per_step(m, n, l))


@given(grids)
def test_schedule_at_least_critical_path(grid):
    """A block needs (extent-1) relay hops to reach its last consumer,
    and each component multiplies l times, so the schedule cannot be
    shorter than either bound."""
    m, n, l = grid
    length = schedule_length(m, n, l)
    assert length >= l
    assert length >= max(m, n) - 1 + 1  # last hop arrives, then multiplies


@given(grids)
def test_first_step_exactly_one_for_square_grids(grid):
    m, n, l = grid
    per_step = multiplications_per_step(m, n, l)
    # only (0,0) holds both a0 and b0 initially... unless the grid is a
    # single row/column, where more components start ready
    if m > 1 and n > 1:
        assert per_step[0] == 1


@settings(max_examples=8, deadline=None)
@given(
    grid=grids,
    seed=st.integers(min_value=0, max_value=50),
)
def test_live_sync_job_takes_exactly_schedule_steps(grid, seed):
    """The engine's step count equals the analytic schedule length —
    the schedule is not merely an approximation of the job."""
    m, n, l = grid
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((2 * m, 2 * l))
    b = rng.standard_normal((2 * l, 2 * n))
    store = LocalKVStore(default_n_parts=3)
    try:
        c, result = summa_multiply(store, a, b, BlockGrid(m, n, l), synchronize=True)
        assert np.allclose(c, a @ b)
        assert result.steps == schedule_length(m, n, l)
    finally:
        store.close()
