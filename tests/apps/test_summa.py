"""SUMMA: Table II schedule, block plumbing, sync & no-sync execution."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.summa import (
    BlockGrid,
    assemble,
    multiplications_per_step,
    schedule_length,
    split,
    summa_multiply,
)
from repro.ebsp.results import Counters
from repro.kvstore.local import LocalKVStore
from repro.kvstore.replicated import ReplicatedKVStore


class TestSchedule:
    def test_table_two_exact(self):
        """The paper's Table II: 1, 3, 6, 3, 6, 3, 5 for M = N = 3."""
        assert multiplications_per_step(3, 3, 3) == [1, 3, 6, 3, 6, 3, 5]

    def test_total_is_grid_times_batches(self):
        for m, n, l in [(2, 2, 2), (3, 3, 3), (4, 4, 4), (2, 3, 2), (4, 2, 2)]:
            assert sum(multiplications_per_step(m, n, l)) == m * n * l

    def test_seven_steps_for_three_by_three(self):
        assert schedule_length(3, 3, 3) == 7

    def test_slowdown_factor(self):
        """7/3: the sync schedule serializes 7 rounds of multiplies even
        though a single component only ever does 3."""
        assert schedule_length(3, 3, 3) / 3 == pytest.approx(7 / 3)

    def test_trivial_grid(self):
        assert multiplications_per_step(1, 1, 1) == [1]

    def test_bad_dimensions(self):
        with pytest.raises(ValueError):
            multiplications_per_step(0, 3, 3)


class TestBlocks:
    def test_split_assemble_roundtrip(self):
        matrix = np.arange(35.0).reshape(5, 7)
        blocks = split(matrix, 2, 3)
        assert np.array_equal(assemble(blocks, 2, 3), matrix)

    def test_uneven_split_sizes(self):
        blocks = split(np.zeros((7, 5)), 3, 2)
        assert blocks[(0, 0)].shape == (3, 3)
        assert blocks[(2, 1)].shape == (2, 2)

    def test_split_rejects_1d(self):
        with pytest.raises(ValueError):
            split(np.zeros(5), 1, 1)

    def test_grid_key_roundtrip(self):
        grid = BlockGrid(3, 4, 3)
        for i, j in grid.components:
            assert grid.coord_of(grid.key_of(i, j)) == (i, j)

    def test_grid_validation(self):
        with pytest.raises(ValueError):
            BlockGrid(0, 1, 1)
        with pytest.raises(ValueError):
            BlockGrid(2, 2, 5)


class TestExecution:
    @pytest.fixture
    def store(self):
        instance = LocalKVStore(default_n_parts=3)
        yield instance
        instance.close()

    def test_sync_correct_and_step_count_matches_schedule(self, store):
        rng = np.random.default_rng(1)
        a = rng.standard_normal((30, 24))
        b = rng.standard_normal((24, 27))
        c, result = summa_multiply(store, a, b, BlockGrid(3, 3, 3), synchronize=True)
        assert np.allclose(c, a @ b)
        assert result.steps == schedule_length(3, 3, 3)
        assert result.synchronized

    def test_sync_per_step_multiplications_match_table_two(self, store):
        rng = np.random.default_rng(2)
        a = rng.standard_normal((18, 18))
        b = rng.standard_normal((18, 18))
        counters = Counters()
        _, result = summa_multiply(
            store, a, b, BlockGrid(3, 3, 3), synchronize=True, counters=counters
        )
        observed = [counters.get(f"muls_step_{s}") for s in range(result.steps)]
        assert observed == [1, 3, 6, 3, 6, 3, 5]

    def test_nosync_correct(self, store):
        rng = np.random.default_rng(3)
        a = rng.standard_normal((20, 16))
        b = rng.standard_normal((16, 22))
        c, result = summa_multiply(store, a, b, BlockGrid(3, 3, 3), synchronize=False)
        assert np.allclose(c, a @ b)
        assert not result.synchronized

    def test_nosync_same_multiplication_count(self, store):
        rng = np.random.default_rng(4)
        a = rng.standard_normal((12, 12))
        b = rng.standard_normal((12, 12))
        counters = Counters()
        summa_multiply(
            store, a, b, BlockGrid(3, 3, 3), synchronize=False, counters=counters
        )
        assert counters.get("muls_total") == 27

    def test_rectangular_grids(self, store):
        rng = np.random.default_rng(5)
        a = rng.standard_normal((8, 6))
        b = rng.standard_normal((6, 10))
        c, _ = summa_multiply(store, a, b, BlockGrid(2, 4, 2), synchronize=True)
        assert np.allclose(c, a @ b)

    def test_shape_mismatch_rejected(self, store):
        with pytest.raises(ValueError):
            summa_multiply(store, np.zeros((3, 4)), np.zeros((5, 3)), BlockGrid(1, 1, 1))

    def test_on_replicated_store(self):
        """The paper ran SUMMA on WXS; we run it on the WXS analog."""
        store = ReplicatedKVStore(n_shards=3, replication=1)
        try:
            rng = np.random.default_rng(6)
            a = rng.standard_normal((15, 15))
            b = rng.standard_normal((15, 15))
            c, _ = summa_multiply(store, a, b, BlockGrid(3, 3, 3), synchronize=False)
            assert np.allclose(c, a @ b)
        finally:
            store.close()

    @settings(max_examples=10, deadline=None)
    @given(
        m=st.integers(min_value=1, max_value=3),
        n=st.integers(min_value=1, max_value=3),
        rows=st.integers(min_value=3, max_value=12),
        inner=st.integers(min_value=3, max_value=12),
        cols=st.integers(min_value=3, max_value=12),
        seed=st.integers(min_value=0, max_value=100),
    )
    def test_matches_numpy_for_arbitrary_shapes(self, m, n, rows, inner, cols, seed):
        batches = min(m, n)
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((rows, inner))
        b = rng.standard_normal((inner, cols))
        store = LocalKVStore(default_n_parts=2)
        try:
            c, _ = summa_multiply(store, a, b, BlockGrid(m, n, batches), synchronize=True)
            assert np.allclose(c, a @ b)
        finally:
            store.close()
