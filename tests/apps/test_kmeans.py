"""K-means on EBSP against the plain Lloyd's reference."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.apps.kmeans import (
    CentroidAggregator,
    gaussian_blobs,
    reference_kmeans,
    run_kmeans,
)
from repro.kvstore.local import LocalKVStore


@pytest.fixture
def store():
    instance = LocalKVStore(default_n_parts=4)
    yield instance
    instance.close()


def initial_from(points, k):
    return np.vstack([points[key] for key in sorted(points)[:k]])


class TestAgainstReference:
    def test_identical_assignments_and_centroids(self, store):
        points = gaussian_blobs(120, k=3, seed=4)
        initial = initial_from(points, 3)
        expected_centroids, expected_assignments, _ = reference_kmeans(
            points, initial, max_iterations=50
        )
        result = run_kmeans(store, points, k=3, initial_centroids=initial)
        assert result.assignments == expected_assignments
        assert np.allclose(result.centroids, expected_centroids)

    def test_iteration_counts_match(self, store):
        points = gaussian_blobs(80, k=4, seed=9)
        initial = initial_from(points, 4)
        _, _, expected_iterations = reference_kmeans(points, initial, 50)
        result = run_kmeans(store, points, k=4, initial_centroids=initial)
        assert result.iterations == expected_iterations

    def test_separated_blobs_recovered(self, store):
        points = gaussian_blobs(90, k=3, seed=11, separation=10.0, spread=0.2)
        result = run_kmeans(store, points, k=3)
        # points generated round-robin: i % 3 is ground truth; clustering
        # must be a relabeling of it
        mapping = {}
        for key, cluster in result.assignments.items():
            truth = key % 3
            mapping.setdefault(cluster, truth)
            assert mapping[cluster] == truth

    def test_k_equals_n(self, store):
        points = {i: np.array([float(i), 0.0]) for i in range(4)}
        result = run_kmeans(store, points, k=4)
        assert sorted(result.assignments.values()) == [0, 1, 2, 3]

    def test_single_cluster(self, store):
        points = gaussian_blobs(30, k=1, seed=2)
        result = run_kmeans(store, points, k=1)
        assert set(result.assignments.values()) == {0}
        assert np.allclose(
            result.centroids[0], np.mean(np.vstack(list(points.values())), axis=0)
        )

    def test_validation(self, store):
        points = {0: np.zeros(2), 1: np.ones(2)}
        with pytest.raises(ValueError):
            run_kmeans(store, points, k=0)
        with pytest.raises(ValueError):
            run_kmeans(store, points, k=5)
        with pytest.raises(ValueError):
            run_kmeans(store, points, k=2, initial_centroids=np.zeros((3, 2)))


class TestCentroidAggregator:
    def test_fold(self):
        agg = CentroidAggregator(2)
        partial = agg.create()
        partial = agg.add(partial, np.array([1.0, 2.0]))
        partial = agg.add(partial, np.array([3.0, 4.0]))
        vec_sum, count = agg.finish(partial)
        assert np.allclose(vec_sum, [4.0, 6.0])
        assert count == 2

    def test_merge(self):
        agg = CentroidAggregator(1)
        a = agg.add(agg.create(), np.array([1.0]))
        b = agg.add(agg.create(), np.array([5.0]))
        vec_sum, count = agg.merge(a, b)
        assert vec_sum[0] == 6.0 and count == 2

    def test_bad_dims(self):
        with pytest.raises(ValueError):
            CentroidAggregator(0)


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(min_value=0, max_value=1000),
    n=st.integers(min_value=8, max_value=40),
    k=st.integers(min_value=1, max_value=4),
    dims=st.integers(min_value=1, max_value=3),
)
def test_ebsp_kmeans_equals_lloyd_property(seed, n, k, dims):
    """Random data: the EBSP job IS Lloyd's algorithm, step for step."""
    rng = np.random.default_rng(seed)
    points = {i: rng.standard_normal(dims) for i in range(n)}
    initial = np.vstack([points[i] for i in range(k)])
    expected_centroids, expected_assignments, _ = reference_kmeans(points, initial, 30)
    store = LocalKVStore(default_n_parts=3)
    try:
        result = run_kmeans(store, points, k=k, initial_centroids=initial, max_iterations=30)
        assert result.assignments == expected_assignments
        assert np.allclose(result.centroids, expected_centroids)
    finally:
        store.close()
