"""PageRank: both variants against the dense reference (paper §V-A)."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.apps.pagerank import (
    PageRankConfig,
    pagerank_batch,
    read_rank_table,
    build_pagerank_table,
    pagerank_direct,
    pagerank_mapreduce,
    read_ranks,
    reference_pagerank,
)
from repro.apps.pagerank.common import combine_rank_messages, C_TAG, S_TAG
from repro.graph.generators import power_law_directed_graph
from repro.kvstore.local import LocalKVStore


@pytest.fixture
def graph():
    return power_law_directed_graph(150, 700, seed=11)


def ranks_for(variant, adjacency, config, store=None):
    store = store or LocalKVStore(default_n_parts=4)
    n = build_pagerank_table(store, "pr", adjacency)
    result = variant(store, "pr", n, config)
    return read_ranks(store, "pr"), result


class TestCorrectness:
    def test_direct_matches_reference(self, graph):
        config = PageRankConfig(iterations=7)
        reference = reference_pagerank(graph, config)
        ranks, _ = ranks_for(pagerank_direct, graph, config)
        for v, expected in reference.items():
            assert ranks[v] == pytest.approx(expected, abs=1e-12)

    def test_mapreduce_matches_reference(self, graph):
        config = PageRankConfig(iterations=7)
        reference = reference_pagerank(graph, config)
        ranks, _ = ranks_for(pagerank_mapreduce, graph, config)
        for v, expected in reference.items():
            assert ranks[v] == pytest.approx(expected, abs=1e-12)

    def test_variants_agree_exactly(self, graph):
        config = PageRankConfig(iterations=5)
        direct, _ = ranks_for(pagerank_direct, graph, config)
        mapreduce, _ = ranks_for(pagerank_mapreduce, graph, config)
        for v in direct:
            assert direct[v] == pytest.approx(mapreduce[v], abs=1e-14)

    def test_ranks_sum_to_one(self, graph):
        ranks, _ = ranks_for(pagerank_direct, graph, PageRankConfig(iterations=6))
        assert sum(ranks.values()) == pytest.approx(1.0, abs=1e-9)

    def test_sink_mass_redistributed(self):
        """A graph that is all sinks: every rank must equal 1/N."""
        adjacency = {v: np.empty(0, dtype=np.int64) for v in range(10)}
        ranks, _ = ranks_for(pagerank_direct, adjacency, PageRankConfig(iterations=4))
        for rank in ranks.values():
            assert rank == pytest.approx(0.1, abs=1e-12)

    def test_star_graph_hub_ranks_highest(self):
        adjacency = {0: np.empty(0, dtype=np.int64)}
        for leaf in range(1, 8):
            adjacency[leaf] = np.asarray([0], dtype=np.int64)
        ranks, _ = ranks_for(pagerank_direct, adjacency, PageRankConfig(iterations=10))
        assert ranks[0] == max(ranks.values())

    def test_parallel_edges_deduplicated(self):
        """W_u is a set cardinality: duplicate targets must not double."""
        dup = {0: np.asarray([1, 1, 1], dtype=np.int64), 1: np.asarray([0], dtype=np.int64)}
        single = {0: np.asarray([1], dtype=np.int64), 1: np.asarray([0], dtype=np.int64)}
        config = PageRankConfig(iterations=5)
        r_dup, _ = ranks_for(pagerank_direct, dup, config)
        r_single, _ = ranks_for(pagerank_direct, single, config)
        assert r_dup[0] == pytest.approx(r_single[0], abs=1e-14)


class TestStructuralCosts:
    """The quantities Table I's difference is made of."""

    def test_direct_one_step_per_iteration(self, graph):
        config = PageRankConfig(iterations=6)
        _, result = ranks_for(pagerank_direct, graph, config)
        assert result.steps == config.iterations + 1

    def test_mapreduce_two_steps_per_iteration(self, graph):
        config = PageRankConfig(iterations=6)
        _, result = ranks_for(pagerank_mapreduce, graph, config)
        assert result.steps == 2 * config.iterations

    def test_mapreduce_has_roughly_double_barriers(self, graph):
        config = PageRankConfig(iterations=8)
        _, direct = ranks_for(pagerank_direct, graph, config)
        _, mapreduce = ranks_for(pagerank_mapreduce, graph, config)
        assert mapreduce.barriers >= 2 * direct.barriers - 2


class TestCombiner:
    def test_contributions_sum(self):
        assert combine_rank_messages((C_TAG, 0.1), (C_TAG, 0.2)) == (C_TAG, pytest.approx(0.3))

    def test_state_absorbs_contribution(self):
        edges = np.asarray([1], dtype=np.int64)
        combined = combine_rank_messages((S_TAG, edges, 0.5, 0.0), (C_TAG, 0.2))
        assert combined[0] == S_TAG and combined[3] == pytest.approx(0.2)

    def test_two_states_rejected(self):
        edges = np.empty(0, dtype=np.int64)
        with pytest.raises(ValueError):
            combine_rank_messages((S_TAG, edges, 0.5, 0.0), (S_TAG, edges, 0.5, 0.0))


class TestConfig:
    def test_bad_damping(self):
        with pytest.raises(ValueError):
            PageRankConfig(damping=1.0)
        with pytest.raises(ValueError):
            PageRankConfig(damping=0.0)

    def test_bad_iterations(self):
        with pytest.raises(ValueError):
            PageRankConfig(iterations=0)


class TestAcrossStores:
    def test_direct_same_result_everywhere(self, store, graph):
        config = PageRankConfig(iterations=4)
        reference = reference_pagerank(graph, config)
        n = build_pagerank_table(store, "pr", graph)
        pagerank_direct(store, "pr", n, config)
        ranks = read_ranks(store, "pr")
        for v, expected in reference.items():
            assert ranks[v] == pytest.approx(expected, abs=1e-12)


class TestBatchVariant:
    """The columnar variant: one job, two data planes (apps layer)."""

    def _run(self, adjacency, config, batch_compute=None):
        store = LocalKVStore(default_n_parts=4)
        n = build_pagerank_table(store, "pr", adjacency)
        result = pagerank_batch(
            store, "pr", n, config, batch_compute=batch_compute
        )
        raw = sorted(store.get_table("pr_ranks").items())
        return read_rank_table(store, "pr_ranks"), result, raw

    def test_matches_reference(self, graph):
        config = PageRankConfig(iterations=7)
        reference = reference_pagerank(graph, config)
        ranks, result, _ = self._run(graph, config)
        assert result.counters.get("batch_fallbacks", 0) == 0
        for v, expected in reference.items():
            assert ranks[v] == pytest.approx(expected, abs=1e-12)

    def test_matches_direct_variant(self, graph):
        config = PageRankConfig(iterations=5)
        direct, _ = ranks_for(pagerank_direct, graph, config)
        batch, _, _ = self._run(graph, config)
        for v in direct:
            assert batch[v] == pytest.approx(direct[v], abs=1e-12)

    def test_byte_identical_on_sink_free_graph(self):
        # without sinks, no aggregator is in play, so the per-key and
        # batch planes must produce bit-for-bit identical float64 ranks
        n = 120
        adjacency = {v: [(v + 1) % n, (v * 7 + 3) % n] for v in range(n)}
        config = PageRankConfig(iterations=6)
        _, perkey_result, perkey_raw = self._run(
            adjacency, config, batch_compute=False
        )
        _, batch_result, batch_raw = self._run(
            adjacency, config, batch_compute=None
        )
        assert pickle.dumps(batch_raw) == pickle.dumps(perkey_raw)
        assert (
            batch_result.counters["messages_sent"]
            == perkey_result.counters["messages_sent"]
        )

    def test_sink_graph_modes_agree_approximately(self):
        # sink mass flows through SumAggregator, whose fold order
        # differs between the scalar and vectorized paths: tolerance,
        # not bitwise
        adjacency = {0: [1, 2], 1: [3], 2: [3], 3: [], 4: [0, 3]}
        config = PageRankConfig(iterations=8)
        perkey, _, _ = self._run(adjacency, config, batch_compute=False)
        batch, _, _ = self._run(adjacency, config, batch_compute=None)
        reference = reference_pagerank(adjacency, config)
        for v in reference:
            assert batch[v] == pytest.approx(perkey[v], abs=1e-12)
            assert batch[v] == pytest.approx(reference[v], abs=1e-12)

    def test_ranks_table_override_leaves_graph_table_intact(self, graph):
        store = LocalKVStore(default_n_parts=4)
        n = build_pagerank_table(store, "pr", graph)
        before = {k: v.edges.tobytes() for k, v in store.get_table("pr").items()}
        pagerank_batch(
            store, "pr", n, PageRankConfig(iterations=3), ranks_table="my_ranks"
        )
        assert store.has_table("my_ranks")
        ranks = read_rank_table(store, "my_ranks")
        assert len(ranks) == n
        assert sum(ranks.values()) == pytest.approx(1.0, abs=1e-9)
        after = {k: v.edges.tobytes() for k, v in store.get_table("pr").items()}
        assert after == before
