"""Incremental SSSP: both variants against BFS ground truth (§V-C)."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.apps.sssp import (
    ChangeBatch,
    DynamicGraphWorkload,
    FullScanSSSP,
    INFINITY,
    SelectiveSSSP,
    reference_distances,
)
from repro.apps.sssp.common import adjacency_from_edges, apply_batch_to_adjacency
from repro.kvstore.local import LocalKVStore


def fresh_pair(adjacency, source):
    """Both variants loaded with the same graph and solved."""
    s1, s2 = LocalKVStore(default_n_parts=4), LocalKVStore(default_n_parts=4)
    selective = SelectiveSSSP(s1, source)
    selective.load(adjacency)
    selective.initial_solve()
    full = FullScanSSSP(s2, source)
    full.load(adjacency)
    full.initial_solve()
    return selective, full


def check_against_reference(variant, adjacency, source):
    reference = reference_distances(adjacency, source)
    distances = variant.distances()
    mismatches = {v for v in reference if distances.get(v) != reference[v]}
    assert not mismatches, f"{len(mismatches)} wrong annotations, e.g. {sorted(mismatches)[:5]}"


SMALL = adjacency_from_edges(range(8), [(0, 1), (1, 2), (2, 3), (0, 4), (4, 5), (6, 7)])


class TestInitialSolve:
    def test_both_variants_match_bfs(self):
        selective, full = fresh_pair(SMALL, source=0)
        check_against_reference(selective, SMALL, 0)
        check_against_reference(full, SMALL, 0)

    def test_unreachable_is_infinity(self):
        selective, full = fresh_pair(SMALL, source=0)
        assert selective.distances()[6] == INFINITY
        assert full.distances()[6] == INFINITY

    def test_source_is_zero(self):
        selective, full = fresh_pair(SMALL, source=2)
        assert selective.distances()[2] == 0
        assert full.distances()[2] == 0


class TestPrimitiveChanges:
    def _apply_and_check(self, batch, source=0, base=None):
        adjacency = {v: set(ns) for v, ns in (base or SMALL).items()}
        selective, full = fresh_pair(adjacency, source)
        apply_batch_to_adjacency(adjacency, batch)
        selective.update(batch)
        full.update(batch)
        check_against_reference(selective, adjacency, source)
        check_against_reference(full, adjacency, source)
        return selective, full

    def test_edge_addition_shortens_paths(self):
        self._apply_and_check(ChangeBatch(add_edges=((0, 3),)))

    def test_edge_addition_connects_component(self):
        self._apply_and_check(ChangeBatch(add_edges=((5, 6),)))

    def test_edge_removal_lengthens_paths(self):
        self._apply_and_check(ChangeBatch(remove_edges=((0, 1),)))

    def test_edge_removal_disconnects(self):
        # removing 0-4 cuts {4,5} off entirely: the hard +∞ case
        self._apply_and_check(ChangeBatch(remove_edges=((0, 4),)))

    def test_noop_add_existing_edge(self):
        selective, full = self._apply_and_check(ChangeBatch(add_edges=((0, 1),)))

    def test_noop_remove_missing_edge(self):
        self._apply_and_check(ChangeBatch(remove_edges=((0, 7),)))

    def test_add_vertex(self):
        self._apply_and_check(ChangeBatch(add_vertices=(99,)))

    def test_add_vertex_then_connect(self):
        self._apply_and_check(
            ChangeBatch(add_vertices=(99,), add_edges=((99, 0),))
        )

    def test_remove_isolated_vertex(self):
        base = {v: set(ns) for v, ns in SMALL.items()}
        base[99] = set()
        self._apply_and_check(ChangeBatch(remove_vertices=(99,)), base=base)

    def test_remove_connected_vertex_is_noop(self):
        """Only neighbor-free vertices may be removed (paper's primitive)."""
        selective, full = self._apply_and_check(ChangeBatch(remove_vertices=(1,)))
        assert 1 in selective.distances()

    def test_mixed_batch(self):
        self._apply_and_check(
            ChangeBatch(add_edges=((3, 6), (5, 7)), remove_edges=((1, 2),))
        )

    def test_deletion_free_batch_single_wave(self):
        adjacency = {v: set(ns) for v, ns in SMALL.items()}
        s = LocalKVStore(default_n_parts=4)
        full = FullScanSSSP(s, 0)
        full.load(adjacency)
        full.initial_solve()
        batch = ChangeBatch(add_edges=((0, 3),))
        assert not batch.has_deletions
        full.update(batch)  # exercises the one-wave path


class TestSelectiveEnablementAdvantage:
    def test_untouched_region_never_invoked(self):
        """The point of §V-C: only the ripple region runs."""
        # a long path 0-1-2-...-19 plus a separate clique
        path = {i: {i - 1, i + 1} for i in range(1, 19)}
        path[0] = {1}
        path[19] = {18}
        clique_vertices = range(100, 110)
        for v in clique_vertices:
            path[v] = {u for u in clique_vertices if u != v}
        store = LocalKVStore(default_n_parts=4)
        selective = SelectiveSSSP(store, 0)
        selective.load(path)
        selective.initial_solve()

        before = selective.distances()
        batch = ChangeBatch(add_edges=((0, 5),))
        steps = selective.update(batch)
        after = selective.distances()
        # the clique annotations are untouched and still correct
        for v in clique_vertices:
            assert after[v] == before[v] == INFINITY
        # only a few ripple steps were needed
        assert 0 < steps < 20

    def test_empty_batch_zero_steps(self):
        store = LocalKVStore(default_n_parts=4)
        selective = SelectiveSSSP(store, 0)
        selective.load(SMALL)
        selective.initial_solve()
        assert selective.update(ChangeBatch()) == 0


class TestNoSyncComposition:
    """Selective enablement + the no-sync switch compose: the same
    incremental job runs barrier-free and stays correct."""

    def test_selective_updates_without_barriers(self):
        workload = DynamicGraphWorkload(
            n_vertices=100, n_edges=400, batches=6, changes_per_batch=15, seed=77
        )
        adjacency = {v: set(ns) for v, ns in workload.initial_adjacency.items()}
        store = LocalKVStore(default_n_parts=4)
        selective = SelectiveSSSP(store, workload.source)
        selective.load(adjacency)
        selective.initial_solve(synchronize=False)
        check_against_reference(selective, adjacency, workload.source)
        for batch in workload.change_batches:
            apply_batch_to_adjacency(adjacency, batch)
            selective.update(batch, synchronize=False)
            check_against_reference(selective, adjacency, workload.source)

    def test_job_is_no_sync_eligible(self):
        from repro.apps.sssp.incremental import _SelectiveJob
        from repro.ebsp.runner import plan_for

        job = _SelectiveJob("t", 0, 100, [0])
        assert plan_for(job).no_sync


class TestWorkloadSequence:
    def test_ten_batches_stay_correct(self):
        workload = DynamicGraphWorkload(
            n_vertices=120, n_edges=500, batches=10, changes_per_batch=25, seed=42
        )
        adjacency = {v: set(ns) for v, ns in workload.initial_adjacency.items()}
        selective, full = fresh_pair(adjacency, workload.source)
        for batch in workload.change_batches:
            apply_batch_to_adjacency(adjacency, batch)
            selective.update(batch)
            full.update(batch)
            check_against_reference(selective, adjacency, workload.source)
            check_against_reference(full, adjacency, workload.source)

    def test_workload_deterministic(self):
        a = DynamicGraphWorkload(n_vertices=50, n_edges=100, seed=5)
        b = DynamicGraphWorkload(n_vertices=50, n_edges=100, seed=5)
        assert a.source == b.source
        assert a.change_batches == b.change_batches


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n=st.integers(min_value=5, max_value=30),
    edge_factor=st.integers(min_value=1, max_value=3),
    n_changes=st.integers(min_value=1, max_value=15),
)
def test_selective_variant_random_graphs_property(seed, n, edge_factor, n_changes):
    """Random graph + random batch: selective == BFS, always."""
    import numpy as np

    from repro.apps.sssp.workload import random_change_batch

    rng = np.random.default_rng(seed)
    edges = [
        (int(rng.integers(n)), int(rng.integers(n))) for _ in range(n * edge_factor)
    ]
    adjacency = adjacency_from_edges(range(n), [e for e in edges if e[0] != e[1]])
    source = int(rng.integers(n))
    store = LocalKVStore(default_n_parts=3)
    selective = SelectiveSSSP(store, source)
    selective.load(adjacency)
    selective.initial_solve()
    batch = random_change_batch(n, n_changes, rng)
    apply_batch_to_adjacency(adjacency, batch)
    selective.update(batch)
    reference = reference_distances(adjacency, source)
    distances = selective.distances()
    assert all(distances.get(v) == reference[v] for v in reference)
