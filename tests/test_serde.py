"""Marshalling codec and statistics."""

from __future__ import annotations

import threading

import numpy as np
from hypothesis import given, strategies as st

from repro.serde import (
    Codec,
    SerdeStats,
    deep_copy_via_marshal,
    pack_payload_column,
    payload_column_array,
    unpack_payload_column,
)


class TestCodec:
    def test_roundtrip_returns_equal_copy(self):
        codec = Codec()
        obj = {"a": [1, 2, 3], "b": (4, 5)}
        copy = codec.roundtrip(obj)
        assert copy == obj
        assert copy is not obj
        assert copy["a"] is not obj["a"]

    def test_roundtrip_numpy(self):
        codec = Codec()
        arr = np.arange(10)
        out = codec.roundtrip(arr)
        assert np.array_equal(out, arr)
        assert out is not arr

    def test_stats_counted(self):
        stats = SerdeStats()
        codec = Codec(stats)
        codec.roundtrip("hello")
        snap = stats.snapshot()
        assert snap["marshalled_objects"] == 1
        assert snap["unmarshalled_objects"] == 1
        assert snap["marshalled_bytes"] > 0

    def test_stats_reset(self):
        stats = SerdeStats()
        codec = Codec(stats)
        codec.dumps([1, 2, 3])
        stats.reset()
        assert stats.snapshot() == {
            "marshalled_objects": 0,
            "marshalled_bytes": 0,
            "unmarshalled_objects": 0,
            "batched_requests": 0,
            "batched_records": 0,
        }

    def test_stats_thread_safe(self):
        stats = SerdeStats()
        codec = Codec(stats)

        def worker():
            for _ in range(200):
                codec.roundtrip(42)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert stats.snapshot()["marshalled_objects"] == 800

    @given(
        st.recursive(
            st.one_of(st.integers(), st.text(), st.none(), st.booleans()),
            lambda children: st.lists(children, max_size=4)
            | st.dictionaries(st.text(max_size=5), children, max_size=4),
            max_leaves=20,
        )
    )
    def test_roundtrip_identity_property(self, obj):
        assert deep_copy_via_marshal(obj) == obj


class TestPayloadColumn:
    """The spill codec's column packing (batch data plane)."""

    def test_numpy_scalars_pack_to_typed_1d(self):
        payloads = [np.float64(0.5), np.float64(1.5), np.float64(2.5)]
        packed = pack_payload_column(payloads)
        assert isinstance(packed, np.ndarray)
        assert packed.ndim == 1 and packed.dtype == np.float64
        unpacked = unpack_payload_column(packed)
        assert unpacked == payloads
        assert all(isinstance(p, np.float64) for p in unpacked)

    def test_int64_scalars_pack(self):
        packed = pack_payload_column([np.int64(7), np.int64(-3)])
        assert isinstance(packed, np.ndarray) and packed.dtype == np.int64

    def test_python_ints_never_pack(self):
        # arbitrary-precision ints must not be coerced to a fixed dtype
        payloads = [1, 2, 10**30]
        assert pack_payload_column(payloads) is payloads

    def test_mixed_dtypes_pass_through(self):
        payloads = [np.float64(0.5), np.int64(1)]
        assert pack_payload_column(payloads) is payloads

    def test_same_shape_arrays_stack_to_2d(self):
        rows = [np.asarray([1.0, 2.0]), np.asarray([3.0, 4.0])]
        packed = pack_payload_column(rows)
        assert isinstance(packed, np.ndarray) and packed.shape == (2, 2)
        unpacked = unpack_payload_column(packed)
        assert len(unpacked) == 2
        assert np.array_equal(unpacked[0], rows[0])
        assert np.array_equal(unpacked[1], rows[1])

    def test_ragged_arrays_pass_through(self):
        rows = [np.asarray([1.0, 2.0]), np.asarray([3.0])]
        assert pack_payload_column(rows) is rows

    def test_ndarray_input_passes_through(self):
        col = np.arange(5, dtype=np.float64)
        assert pack_payload_column(col) is col

    def test_roundtrip_through_codec_preserves_dtype(self):
        packed = pack_payload_column([np.float32(1.0), np.float32(2.0)])
        restored = deep_copy_via_marshal(packed)
        unpacked = unpack_payload_column(restored)
        assert all(isinstance(p, np.float32) for p in unpacked)

    def test_payload_column_array_contract(self):
        assert payload_column_array(np.arange(3)) is not None
        assert payload_column_array([1, 2, 3]) is None
        assert payload_column_array(np.ones((2, 2))) is None  # 2-D: per-row
        obj = np.empty(2, dtype=object)
        obj[:] = [(1,), (2,)]
        assert payload_column_array(obj) is None

    def test_empty_column_passes_through(self):
        empty: list = []
        assert pack_payload_column(empty) is empty
        assert unpack_payload_column(empty) == []
