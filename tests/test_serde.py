"""Marshalling codec and statistics."""

from __future__ import annotations

import threading

import numpy as np
from hypothesis import given, strategies as st

from repro.serde import Codec, SerdeStats, deep_copy_via_marshal


class TestCodec:
    def test_roundtrip_returns_equal_copy(self):
        codec = Codec()
        obj = {"a": [1, 2, 3], "b": (4, 5)}
        copy = codec.roundtrip(obj)
        assert copy == obj
        assert copy is not obj
        assert copy["a"] is not obj["a"]

    def test_roundtrip_numpy(self):
        codec = Codec()
        arr = np.arange(10)
        out = codec.roundtrip(arr)
        assert np.array_equal(out, arr)
        assert out is not arr

    def test_stats_counted(self):
        stats = SerdeStats()
        codec = Codec(stats)
        codec.roundtrip("hello")
        snap = stats.snapshot()
        assert snap["marshalled_objects"] == 1
        assert snap["unmarshalled_objects"] == 1
        assert snap["marshalled_bytes"] > 0

    def test_stats_reset(self):
        stats = SerdeStats()
        codec = Codec(stats)
        codec.dumps([1, 2, 3])
        stats.reset()
        assert stats.snapshot() == {
            "marshalled_objects": 0,
            "marshalled_bytes": 0,
            "unmarshalled_objects": 0,
            "batched_requests": 0,
            "batched_records": 0,
        }

    def test_stats_thread_safe(self):
        stats = SerdeStats()
        codec = Codec(stats)

        def worker():
            for _ in range(200):
                codec.roundtrip(42)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert stats.snapshot()["marshalled_objects"] == 800

    @given(
        st.recursive(
            st.one_of(st.integers(), st.text(), st.none(), st.booleans()),
            lambda children: st.lists(children, max_size=4)
            | st.dictionaries(st.text(max_size=5), children, max_size=4),
            max_leaves=20,
        )
    )
    def test_roundtrip_identity_property(self, obj):
        assert deep_copy_via_marshal(obj) == obj
