"""The Pregel-style Graph EBSP layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ebsp.aggregators import SumAggregator
from repro.graph import (
    VertexProgram,
    VertexState,
    load_graph,
    ring_graph,
    run_vertex_program,
)


class MinLabel(VertexProgram):
    """Connected components by minimum-label propagation."""

    def compute(self, v):
        if v.superstep == 0:
            v.value = v.vertex_id
            v.send_to_neighbors(v.value)
            return
        best = min(list(v.messages()), default=v.value)
        if best < v.value:
            v.value = best
            v.send_to_neighbors(best)
        v.vote_to_halt()

    def combine(self, m1, m2):
        return min(m1, m2)


def undirected(adjacency):
    out = {v: set() for v in adjacency}
    for v, targets in adjacency.items():
        for t in targets:
            out[v].add(t)
            out[t].add(v)
    return {v: sorted(ns) for v, ns in out.items()}


class TestVertexPrograms:
    def test_connected_components(self, fast_store):
        adjacency = undirected({0: [1], 1: [2], 2: [], 3: [4], 4: [], 5: []})
        load_graph(fast_store, "g", adjacency)
        run_vertex_program(fast_store, MinLabel(), "g")
        labels = {k: s.value for k, s in fast_store.get_table("g").items()}
        assert labels == {0: 0, 1: 0, 2: 0, 3: 3, 4: 3, 5: 5}

    def test_halted_vertex_reactivated_by_message(self, fast_store):
        invocations = []

        class Probe(VertexProgram):
            def compute(self, v):
                invocations.append((v.superstep, v.vertex_id))
                if v.superstep == 0 and v.vertex_id == 0:
                    pass  # stay active, send later
                if v.superstep == 2 and v.vertex_id == 0:
                    v.send(1, "wake-up")
                    v.vote_to_halt()
                    return
                if v.vertex_id == 1:
                    v.vote_to_halt()
                    return
                if v.superstep >= 3:
                    v.vote_to_halt()

        load_graph(fast_store, "g", {0: [], 1: []})
        run_vertex_program(fast_store, Probe(), "g")
        # vertex 1 halts at superstep 0, then runs again at 3 via message
        assert (3, 1) in invocations
        assert (1, 1) not in invocations and (2, 1) not in invocations

    def test_all_halt_terminates(self, fast_store):
        class HaltNow(VertexProgram):
            def compute(self, v):
                v.vote_to_halt()

        load_graph(fast_store, "g", {i: [] for i in range(5)})
        result = run_vertex_program(fast_store, HaltNow(), "g")
        assert result.steps == 1

    def test_max_supersteps(self, fast_store):
        class Forever(VertexProgram):
            def compute(self, v):
                pass  # never halts

        load_graph(fast_store, "g", {0: []})
        result = run_vertex_program(fast_store, Forever(), "g", max_supersteps=4)
        assert result.steps == 4

    def test_aggregators(self, fast_store):
        class Degrees(VertexProgram):
            def compute(self, v):
                v.aggregate("edges", len(v.edges))
                v.vote_to_halt()

        load_graph(fast_store, "g", {0: [1, 2], 1: [2], 2: []})
        result = run_vertex_program(
            fast_store, Degrees(), "g", aggregators={"edges": SumAggregator()}
        )
        assert result.aggregates == {"edges": 3}

    def test_add_vertex_during_run(self, fast_store):
        class Spawner(VertexProgram):
            def compute(self, v):
                if v.superstep == 0 and v.vertex_id == 0:
                    v.add_vertex(99, value="spawned", edges=[0])
                v.vote_to_halt()

        load_graph(fast_store, "g", {0: []})
        run_vertex_program(fast_store, Spawner(), "g")
        spawned = fast_store.get_table("g").get(99)
        assert spawned.value == "spawned"
        assert list(spawned.edges) == [0]

    def test_conflicting_add_vertex_merged(self, fast_store):
        class Spawner(VertexProgram):
            def compute(self, v):
                if v.superstep == 0:
                    v.add_vertex(99, value="spawned", edges=[v.vertex_id])
                v.vote_to_halt()

        load_graph(fast_store, "g", {0: [], 1: []})
        run_vertex_program(fast_store, Spawner(), "g")
        spawned = fast_store.get_table("g").get(99)
        assert sorted(spawned.edges.tolist()) == [0, 1]

    def test_add_and_remove_edges(self, fast_store):
        class Rewire(VertexProgram):
            def compute(self, v):
                if v.superstep == 0 and v.vertex_id == 0:
                    v.add_edge(2)
                    v.add_edge(2)  # idempotent
                    v.remove_edge(1)
                v.vote_to_halt()

        load_graph(fast_store, "g", {0: [1], 1: [], 2: []})
        run_vertex_program(fast_store, Rewire(), "g")
        assert list(fast_store.get_table("g").get(0).edges) == [2]

    def test_remove_missing_edge_noop(self, fast_store):
        class Remove(VertexProgram):
            def compute(self, v):
                v.remove_edge(99)
                v.vote_to_halt()

        load_graph(fast_store, "g", {0: [1], 1: []})
        run_vertex_program(fast_store, Remove(), "g")
        assert list(fast_store.get_table("g").get(0).edges) == [1]

    def test_remove_self(self, fast_store):
        class Suicide(VertexProgram):
            def compute(self, v):
                if v.vertex_id == 0:
                    v.remove_self()
                else:
                    v.vote_to_halt()

        load_graph(fast_store, "g", {0: [], 1: []})
        run_vertex_program(fast_store, Suicide(), "g")
        table = fast_store.get_table("g")
        assert table.get(0) is None
        assert table.get(1) is not None

    def test_initially_active_subset(self, fast_store):
        invoked = set()

        class Probe(VertexProgram):
            def compute(self, v):
                invoked.add(v.vertex_id)
                v.vote_to_halt()

        load_graph(fast_store, "g", {i: [] for i in range(6)})
        run_vertex_program(fast_store, Probe(), "g", initially_active=[2, 4])
        assert invoked == {2, 4}

    def test_ring_token_passing(self, fast_store):
        class Token(VertexProgram):
            def compute(self, v):
                if v.superstep == 0:
                    if v.vertex_id == 0:
                        v.send_to_neighbors(1)
                    v.vote_to_halt()
                    return
                for token in v.messages():
                    v.value = token
                    if token < 10:
                        v.send_to_neighbors(token + 1)
                v.vote_to_halt()

        load_graph(fast_store, "ring", ring_graph(5))
        run_vertex_program(fast_store, Token(), "ring")
        values = {k: s.value for k, s in fast_store.get_table("ring").items()}
        assert values[0] == 10  # token went around twice


class TestVertexState:
    def test_of_builds_int64_edges(self):
        state = VertexState.of("v", [3, 1, 2])
        assert state.edges.dtype == np.int64
        assert list(state.edges) == [3, 1, 2]


class DualSum(VertexProgram):
    """Message-sum accumulation implemented on both faces.

    Integer math makes the per-key and columnar paths exactly
    comparable: final values, invocation counts, and message counts
    must all agree.
    """

    K = 3

    def compute(self, v):
        total = sum(int(m) for m in v.messages())
        v.value = int((v.value or 0) + total)
        if v.superstep >= self.K:
            v.vote_to_halt()
            return
        v.send_to_neighbors(np.int64(int(v.vertex_id) + v.superstep))

    def step_batch(self, b):
        batch = b.messages
        n = len(b.vertex_ids)
        totals = np.zeros(n, dtype=np.int64)
        payloads = batch.payload_array()
        if payloads is None:
            for i, messages in enumerate(batch):
                totals[i] = sum(int(m) for m in messages)
        elif len(payloads):
            nonzero = batch.counts > 0
            totals[nonzero] = np.add.reduceat(
                payloads.astype(np.int64), batch.offsets[:-1][nonzero]
            )
        b.set_values(
            [
                int((state.value or 0) + total)
                for state, total in zip(b.states, totals.tolist())
            ]
        )
        if b.superstep >= self.K:
            return False
        edges = [state.edges for state in b.states]
        degrees = np.fromiter((len(e) for e in edges), dtype=np.int64, count=n)
        ids = np.asarray(
            [int(k) for k in list(b.vertex_ids)], dtype=np.int64
        )
        b.send_messages(
            np.concatenate(edges), np.repeat(ids + b.superstep, degrees)
        )
        return True


class TestStepBatch:
    def test_step_batch_matches_per_key(self, fast_store):
        adjacency = {v: [(v * 3 + 1) % 12, (v * 5 + 2) % 12] for v in range(12)}
        load_graph(fast_store, "g_batch", adjacency, initial_value=0)
        load_graph(fast_store, "g_perkey", adjacency, initial_value=0)
        # auto-detection routes the overriding program down the batch path
        batch = run_vertex_program(fast_store, DualSum(), "g_batch")
        perkey = run_vertex_program(
            fast_store, DualSum(), "g_perkey", batch_compute=False
        )
        values_batch = {
            k: s.value for k, s in fast_store.get_table("g_batch").items()
        }
        values_perkey = {
            k: s.value for k, s in fast_store.get_table("g_perkey").items()
        }
        assert values_batch == values_perkey
        assert batch.steps == perkey.steps
        assert batch.counters.get("batch_fallbacks", 0) == 0
        for counter in ("compute_invocations", "messages_sent"):
            assert batch.counters[counter] == perkey.counters[counter], counter

    def test_batch_detection_requires_step_batch_override(self):
        from repro.graph.vertex_program import _GraphCompute

        assert _GraphCompute(DualSum()).supports_batch()
        assert not _GraphCompute(MinLabel()).supports_batch()
