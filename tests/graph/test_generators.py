"""Random graph generators (the paper's evaluation workloads)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph.generators import (
    adjacency_to_undirected,
    power_law_directed_graph,
    power_law_undirected_edges,
    ring_graph,
)


class TestDirected:
    def test_deterministic_from_seed(self):
        a = power_law_directed_graph(100, 500, seed=9)
        b = power_law_directed_graph(100, 500, seed=9)
        assert set(a) == set(b)
        for v in a:
            assert np.array_equal(a[v], b[v])

    def test_different_seeds_differ(self):
        a = power_law_directed_graph(100, 500, seed=1)
        b = power_law_directed_graph(100, 500, seed=2)
        assert any(not np.array_equal(a[v], b[v]) for v in a)

    def test_every_vertex_present(self):
        adjacency = power_law_directed_graph(50, 100, seed=0)
        assert set(adjacency) == set(range(50))

    def test_edge_count(self):
        adjacency = power_law_directed_graph(50, 333, seed=0)
        assert sum(len(t) for t in adjacency.values()) == 333

    def test_power_law_skew(self):
        """Attachment is biased: the busiest vertices should take a
        disproportionate share of endpoints."""
        adjacency = power_law_directed_graph(1000, 20_000, seed=5, exponent=0.9)
        in_degree = np.zeros(1000, dtype=np.int64)
        out_degree = np.zeros(1000, dtype=np.int64)
        for v, targets in adjacency.items():
            out_degree[v] = len(targets)
            for t in targets.tolist():
                in_degree[t] += 1
        top = np.sort(out_degree)[::-1][:50].sum()
        assert top > 0.2 * out_degree.sum()  # top 5% vertices > 20% of edges

    def test_sinks_exist_in_sparse_graphs(self):
        """PageRank's W=0 case must actually occur in the workload."""
        adjacency = power_law_directed_graph(500, 400, seed=3)
        assert any(len(t) == 0 for t in adjacency.values())

    def test_bad_args(self):
        with pytest.raises(ValueError):
            power_law_directed_graph(0, 10, seed=0)
        with pytest.raises(ValueError):
            power_law_directed_graph(10, -1, seed=0)


class TestUndirected:
    def test_normalized_and_loop_free(self):
        edges = power_law_undirected_edges(100, 1000, seed=4)
        for u, v in edges:
            assert u < v

    def test_deterministic(self):
        assert power_law_undirected_edges(50, 200, seed=8) == power_law_undirected_edges(
            50, 200, seed=8
        )


class TestHelpers:
    def test_ring(self):
        ring = ring_graph(4)
        assert {v: list(t) for v, t in ring.items()} == {0: [1], 1: [2], 2: [3], 3: [0]}

    def test_adjacency_to_undirected(self):
        adjacency = {0: np.array([1, 1, 0]), 1: np.array([0]), 2: np.array([], dtype=np.int64)}
        assert adjacency_to_undirected(adjacency) == {(0, 1)}
