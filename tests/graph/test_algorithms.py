"""The graph algorithm library against networkx / dense references."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.graph import load_graph
from repro.graph.algorithms import (
    bfs_distances,
    connected_components,
    degree_statistics,
    graph_pagerank,
    k_core,
    label_propagation,
    triangle_count,
    weighted_sssp,
)
from repro.graph.generators import power_law_undirected_edges
from repro.kvstore.local import LocalKVStore


def undirected_adjacency(edges, n):
    adjacency = {v: set() for v in range(n)}
    for a, b in edges:
        adjacency[a].add(b)
        adjacency[b].add(a)
    return {v: sorted(ns) for v, ns in adjacency.items()}


@pytest.fixture
def store():
    instance = LocalKVStore(default_n_parts=4)
    yield instance
    instance.close()


@pytest.fixture
def random_graph():
    edges = power_law_undirected_edges(60, 150, seed=3)
    return undirected_adjacency(edges, 60), edges


class TestConnectedComponents:
    def test_matches_networkx(self, store, random_graph):
        adjacency, edges = random_graph
        graph = nx.Graph(edges)
        graph.add_nodes_from(range(60))
        load_graph(store, "g", adjacency)
        labels = connected_components(store, "g")
        for component in nx.connected_components(graph):
            expected = min(component)
            for vertex in component:
                assert labels[vertex] == expected

    def test_all_isolated(self, store):
        load_graph(store, "g", {v: [] for v in range(5)})
        labels = connected_components(store, "g")
        assert labels == {v: v for v in range(5)}


class TestBfs:
    def test_matches_networkx(self, store, random_graph):
        adjacency, edges = random_graph
        graph = nx.Graph(edges)
        graph.add_nodes_from(range(60))
        load_graph(store, "g", adjacency)
        distances = bfs_distances(store, "g", source=0)
        expected = nx.single_source_shortest_path_length(graph, 0)
        for vertex in range(60):
            assert distances[vertex] == expected.get(vertex)

    def test_unreachable_is_none(self, store):
        load_graph(store, "g", {0: [1], 1: [0], 2: []})
        distances = bfs_distances(store, "g", source=0)
        assert distances == {0: 0, 1: 1, 2: None}


class TestGraphPageRank:
    def test_matches_raw_ebsp_variant(self, store):
        """The graph-layer PageRank must agree with the §V-A app."""
        from repro.apps.pagerank import (
            PageRankConfig,
            build_pagerank_table,
            pagerank_direct,
            read_ranks,
        )
        from repro.graph.generators import power_law_directed_graph

        adjacency = power_law_directed_graph(80, 320, seed=5)
        dedup = {v: np.unique(t) for v, t in adjacency.items()}
        load_graph(store, "g", {v: t.tolist() for v, t in dedup.items()})
        ranks_graph = graph_pagerank(store, "g", 80, iterations=6)

        other = LocalKVStore(default_n_parts=4)
        build_pagerank_table(other, "pr", adjacency)
        pagerank_direct(other, "pr", 80, PageRankConfig(iterations=6))
        ranks_app = read_ranks(other, "pr")
        for v in ranks_app:
            assert ranks_graph[v] == pytest.approx(ranks_app[v], abs=1e-12)

    def test_ranks_sum_to_one(self, store, random_graph):
        adjacency, _ = random_graph
        load_graph(store, "g", adjacency)
        ranks = graph_pagerank(store, "g", 60, iterations=5)
        assert sum(ranks.values()) == pytest.approx(1.0, abs=1e-9)

    def test_bad_args(self):
        from repro.graph.algorithms import GraphPageRank

        with pytest.raises(ValueError):
            GraphPageRank(0, 5)
        with pytest.raises(ValueError):
            GraphPageRank(5, 0)
        with pytest.raises(ValueError):
            GraphPageRank(5, 5, damping=1.5)


class TestWeightedSSSP:
    def test_matches_networkx_dijkstra(self, store):
        edges = [(0, 1, 4.0), (0, 2, 1.0), (2, 1, 2.0), (1, 3, 5.0), (2, 3, 8.0)]
        graph = nx.Graph()
        graph.add_nodes_from(range(5))
        adjacency = {v: [] for v in range(5)}
        weights = {}
        for u, v, w in edges:
            graph.add_edge(u, v, weight=w)
            adjacency[u].append(v)
            adjacency[v].append(u)
            weights[(u, v)] = w
            weights[(v, u)] = w
        load_graph(store, "g", adjacency)
        distances = weighted_sssp(store, "g", 0, weights)
        expected = nx.single_source_dijkstra_path_length(graph, 0)
        for vertex in range(5):
            if vertex in expected:
                assert distances[vertex] == pytest.approx(expected[vertex])
            else:
                assert distances[vertex] is None


class TestDegreeStats:
    def test_counts(self, store):
        load_graph(store, "g", {0: [1, 2, 3], 1: [0], 2: [], 3: [0, 1]})
        stats = degree_statistics(store, "g")
        assert stats == {
            "edges": 6,
            "max_degree": 3,
            "mean_degree": 1.5,
            "vertices": 4,
        }


class TestTriangles:
    def test_matches_networkx(self, store, random_graph):
        adjacency, edges = random_graph
        graph = nx.Graph(edges)
        load_graph(store, "g", adjacency)
        counted = triangle_count(store, "g")
        expected = sum(nx.triangles(graph).values()) // 3
        assert counted == expected

    def test_single_triangle(self, store):
        load_graph(store, "g", {0: [1, 2], 1: [0, 2], 2: [0, 1]})
        assert triangle_count(store, "g") == 1

    def test_square_has_none(self, store):
        load_graph(store, "g", {0: [1, 3], 1: [0, 2], 2: [1, 3], 3: [0, 2]})
        assert triangle_count(store, "g") == 0


class TestKCore:
    def test_matches_networkx(self, store, random_graph):
        adjacency, edges = random_graph
        graph = nx.Graph(edges)
        graph.add_nodes_from(range(60))
        load_graph(store, "g", adjacency)
        membership = k_core(store, "g", k=2)
        expected = set(nx.k_core(graph, 2).nodes())
        assert {v for v, alive in membership.items() if alive} == expected

    def test_triangle_is_own_2core(self, store):
        load_graph(store, "g", {0: [1, 2, 3], 1: [0, 2], 2: [0, 1], 3: [0]})
        membership = k_core(store, "g", k=2)
        assert membership == {0: True, 1: True, 2: True, 3: False}

    def test_cascading_removal(self, store):
        # a path: every vertex has degree <= 2, so the 2-core of a pure
        # path is empty — deaths cascade end to end
        path = {0: [1], 1: [0, 2], 2: [1, 3], 3: [2]}
        load_graph(store, "g", path)
        membership = k_core(store, "g", k=2)
        assert not any(membership.values())

    def test_bad_k(self):
        from repro.graph.algorithms import KCoreDecomposition

        with pytest.raises(ValueError):
            KCoreDecomposition(0)


class TestLabelPropagation:
    def test_two_cliques_get_two_labels(self, store):
        clique_a = {v: [u for u in range(4) if u != v] for v in range(4)}
        clique_b = {v: [u for u in range(10, 14) if u != v] for v in range(10, 14)}
        bridge = {**clique_a, **clique_b}
        bridge[3] = bridge[3] + [10]
        bridge[10] = bridge[10] + [3]
        load_graph(store, "g", bridge)
        labels = label_propagation(store, "g")
        assert len({labels[v] for v in range(3)}) == 1
        assert len({labels[v] for v in range(11, 14)}) == 1

    def test_deterministic(self, store):
        adjacency = undirected_adjacency(power_law_undirected_edges(40, 100, seed=6), 40)
        load_graph(store, "g1", adjacency)
        load_graph(store, "g2", adjacency)
        assert label_propagation(store, "g1") == label_propagation(store, "g2")

    def test_superstep_cap_respected(self, store):
        adjacency = undirected_adjacency(power_law_undirected_edges(30, 60, seed=8), 30)
        load_graph(store, "g", adjacency)
        label_propagation(store, "g", max_supersteps=3)  # must terminate


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    n=st.integers(min_value=2, max_value=25),
    density=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_components_and_bfs_agree_with_networkx_property(n, density, seed):
    edges = power_law_undirected_edges(n, n * density, seed=seed)
    adjacency = undirected_adjacency(edges, n)
    graph = nx.Graph(edges)
    graph.add_nodes_from(range(n))
    store = LocalKVStore(default_n_parts=3)
    try:
        load_graph(store, "g", adjacency)
        labels = connected_components(store, "g")
        for component in nx.connected_components(graph):
            assert {labels[v] for v in component} == {min(component)}
        load_graph(store, "g2", adjacency)
        distances = bfs_distances(store, "g2", source=0)
        expected = nx.single_source_shortest_path_length(graph, 0)
        assert all(distances[v] == expected.get(v) for v in range(n))
    finally:
        store.close()
