"""The span tracer: no-op default, recording impl, lane bookkeeping."""

from __future__ import annotations

import threading
import time

import pytest

from repro.obs.trace import (
    DRIVER_LANE,
    NULL_SPAN,
    NULL_TRACER,
    RecordingTracer,
    Tracer,
    activate,
    env_trace_enabled,
    get_tracer,
    resolve_tracer,
)


class TestNullTracer:
    def test_disabled_by_default(self):
        assert not NULL_TRACER.enabled
        assert not Tracer().enabled

    def test_span_is_shared_singleton(self):
        # the disabled hot path must allocate nothing
        a = NULL_TRACER.span("x", cat="t")
        b = NULL_TRACER.span("y", cat="t", anything=1)
        assert a is NULL_SPAN and b is NULL_SPAN

    def test_null_span_is_inert_context_manager(self):
        with NULL_TRACER.span("x") as span:
            span.annotate(k=1)
        token = NULL_TRACER.push_lane("worker-0")
        NULL_TRACER.pop_lane(token)
        NULL_TRACER.instant("x")

    def test_global_default_is_null(self):
        assert get_tracer() is NULL_TRACER

    def test_disabled_overhead_is_flat(self):
        """The no-op path is one attribute check + a shared singleton —
        bound it generously so a regression to per-call allocation or
        locking shows up without making the test timing-sensitive."""
        tracer = get_tracer()
        n = 100_000
        start = time.perf_counter()
        for _ in range(n):
            if tracer.enabled:  # pragma: no cover - disabled here
                pass
            with tracer.span("op"):
                pass
        elapsed = time.perf_counter() - start
        assert elapsed < 2.0, f"no-op span path took {elapsed / n * 1e6:.2f}µs/call"


class TestRecordingTracer:
    def test_records_span_with_duration_and_args(self):
        tracer = RecordingTracer()
        with tracer.span("work", cat="test", part=3) as span:
            span.annotate(records=7)
        (event,) = tracer.events()
        assert event.name == "work"
        assert event.cat == "test"
        assert event.lane == DRIVER_LANE
        assert event.duration >= 0.0
        assert event.args == {"part": 3, "records": 7}

    def test_lane_stack_per_thread(self):
        tracer = RecordingTracer()
        token = tracer.push_lane("worker-5")
        with tracer.span("inner"):
            pass
        tracer.pop_lane(token)
        with tracer.span("outer"):
            pass
        lanes = {e.name: e.lane for e in tracer.events()}
        assert lanes == {"inner": "worker-5", "outer": DRIVER_LANE}

    def test_explicit_lane_wins_over_stack(self):
        tracer = RecordingTracer()
        token = tracer.push_lane("worker-1")
        with tracer.span("op", lane="rpc-0"):
            pass
        tracer.pop_lane(token)
        (event,) = tracer.events()
        assert event.lane == "rpc-0"

    def test_threads_have_independent_lanes(self):
        tracer = RecordingTracer()

        def worker(index):
            token = tracer.push_lane(f"worker-{index}")
            with tracer.span("t"):
                pass
            tracer.pop_lane(token)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(e.lane for e in tracer.events()) == [
            f"worker-{i}" for i in range(4)
        ]

    def test_instant_event(self):
        tracer = RecordingTracer()
        tracer.instant("tick", cat="test", n=1)
        (event,) = tracer.events()
        assert event.duration == 0.0
        assert event.args == {"n": 1}

    def test_concurrent_spans_all_recorded(self):
        tracer = RecordingTracer()
        n_threads, per_thread = 8, 200

        def worker(index):
            token = tracer.push_lane(f"worker-{index}")
            for _ in range(per_thread):
                with tracer.span("op"):
                    pass
            tracer.pop_lane(token)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(tracer.events()) == n_threads * per_thread


class TestActivation:
    def test_activate_installs_and_restores(self):
        tracer = RecordingTracer()
        with activate(tracer):
            assert get_tracer() is tracer
        assert get_tracer() is NULL_TRACER

    def test_activating_null_tracer_is_noop(self):
        with activate(NULL_TRACER):
            assert get_tracer() is NULL_TRACER

    def test_nested_activation_restores_outer(self):
        outer, inner = RecordingTracer(), RecordingTracer()
        with activate(outer):
            with activate(inner):
                assert get_tracer() is inner
            assert get_tracer() is outer


class TestResolve:
    def test_none_follows_env(self, monkeypatch):
        monkeypatch.delenv("RIPPLE_TRACE", raising=False)
        assert resolve_tracer(None) is NULL_TRACER
        monkeypatch.setenv("RIPPLE_TRACE", "1")
        assert resolve_tracer(None).enabled

    @pytest.mark.parametrize("raw,expected", [
        ("1", True), ("true", True), ("YES", True), ("on", True),
        ("0", False), ("", False), ("no", False),
    ])
    def test_env_values(self, monkeypatch, raw, expected):
        monkeypatch.setenv("RIPPLE_TRACE", raw)
        assert env_trace_enabled() is expected

    def test_bools_and_passthrough(self):
        assert resolve_tracer(False) is NULL_TRACER
        assert resolve_tracer(True).enabled
        tracer = RecordingTracer()
        assert resolve_tracer(tracer) is tracer
