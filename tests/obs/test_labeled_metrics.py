"""Labeled metric names: the per-tenant naming convention."""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry


def test_labeled_sorts_keys():
    assert (
        MetricsRegistry.labeled("service.jobs", tenant="a", app="pr")
        == "service.jobs{app=pr,tenant=a}"
    )


def test_labeled_without_labels_is_identity():
    assert MetricsRegistry.labeled("plain") == "plain"


def test_labeled_resolves_to_one_instrument():
    registry = MetricsRegistry()
    registry.counter(MetricsRegistry.labeled("jobs", tenant="a")).add(2)
    registry.counter(MetricsRegistry.labeled("jobs", tenant="a")).add(3)
    registry.counter(MetricsRegistry.labeled("jobs", tenant="b")).add(1)
    snapshot = registry.snapshot()
    assert snapshot["jobs{tenant=a}"] == 5
    assert snapshot["jobs{tenant=b}"] == 1
