"""The metrics registry and the legacy facades plumbed onto it."""

from __future__ import annotations

import threading

import pytest

from repro.ebsp.results import Counters
from repro.obs.metrics import MetricsRegistry
from repro.serde import SerdeStats


class TestRegistry:
    def test_counter_get_or_create(self):
        registry = MetricsRegistry()
        a = registry.counter("x.total")
        b = registry.counter("x.total")
        assert a is b
        a.add(3)
        b.add()
        assert a.value() == 4

    def test_kind_conflict_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("n")
        with pytest.raises(ValueError):
            registry.gauge("n")

    def test_units_follow_first_registration(self):
        registry = MetricsRegistry()
        registry.counter("bytes.out", unit="bytes")
        registry.counter("bytes.out", unit="count")
        assert registry.dump()["bytes.out"]["unit"] == "bytes"

    def test_gauge_set_and_record_max(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("hwm")
        gauge.record_max(5)
        gauge.record_max(3)
        assert gauge.value() == 5
        gauge.set(1)
        assert gauge.value() == 1

    def test_gauge_fn_reads_at_snapshot_time(self):
        registry = MetricsRegistry()
        state = {"v": 0}
        registry.gauge_fn("live", lambda: state["v"])
        state["v"] = 42
        assert registry.snapshot()["live"] == 42

    def test_histogram_summary(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", unit="seconds")
        for v in (1.0, 3.0, 2.0):
            hist.observe(v)
        value = hist.value()
        assert value["count"] == 3
        assert value["total"] == 6.0
        assert value["mean"] == 2.0
        assert value["min"] == 1.0 and value["max"] == 3.0

    def test_dump_carries_type_and_unit(self):
        registry = MetricsRegistry()
        registry.counter("c", unit="bytes").add(7)
        dump = registry.dump()
        assert dump["c"] == {"type": "counter", "unit": "bytes", "value": 7}

    def test_reset(self):
        registry = MetricsRegistry()
        registry.counter("c").add(9)
        registry.gauge("g").set(9)
        registry.reset()
        assert registry.snapshot() == {"c": 0, "g": 0}

    def test_concurrent_adds_are_exact(self):
        registry = MetricsRegistry()
        n_threads, per_thread = 8, 1000

        def worker():
            counter = registry.counter("hot")
            for _ in range(per_thread):
                counter.add()

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert registry.counter("hot").value() == n_threads * per_thread


class TestCountersFacade:
    def test_snapshot_only_shows_facade_names(self):
        registry = MetricsRegistry()
        registry.counter("serde.marshalled_bytes").add(100)
        counters = Counters(registry)
        counters.add("messages_sent", 3)
        assert counters.snapshot() == {"messages_sent": 3}
        # ... while the registry holds both
        assert set(registry.names()) == {"serde.marshalled_bytes", "messages_sent"}

    def test_record_max_keeps_high_water_mark(self):
        counters = Counters()
        counters.record_max("hwm", 4)
        counters.record_max("hwm", 2)
        assert counters.get("hwm") == 4
        assert counters.snapshot()["hwm"] == 4

    def test_get_of_unknown_is_zero(self):
        assert Counters().get("never") == 0


class TestSerdeStatsFacade:
    def test_snapshot_keeps_exact_legacy_keys(self):
        stats = SerdeStats()
        stats.record_marshal(10)
        stats.record_unmarshal()
        stats.record_batch(5)
        assert stats.snapshot() == {
            "marshalled_objects": 1,
            "marshalled_bytes": 10,
            "unmarshalled_objects": 1,
            "batched_requests": 1,
            "batched_records": 5,
        }

    def test_registry_holds_prefixed_names_with_units(self):
        registry = MetricsRegistry()
        stats = SerdeStats(registry)
        stats.record_marshal(32)
        dump = registry.dump()
        assert dump["serde.marshalled_bytes"]["value"] == 32
        assert dump["serde.marshalled_bytes"]["unit"] == "bytes"
        assert dump["serde.marshalled_objects"]["value"] == 1

    def test_legacy_field_reads_still_work(self):
        stats = SerdeStats()
        stats.record_marshal(8)
        stats.record_batch(3)
        assert stats.marshalled_objects == 1
        assert stats.marshalled_bytes == 8
        assert stats.batched_requests == 1
        assert stats.batched_records == 3
        stats.reset()
        assert stats.marshalled_bytes == 0
