"""Trace-schema guarantees on real engine runs (both runtimes).

The exported Chrome/Perfetto document must uphold, on the threaded
runtime *and* the inline runtime:

- structural validity (``validate_chrome_trace`` finds nothing);
- one ``worker-<i>`` lane per runtime worker that ran part-steps;
- spans on a lane nest properly, with no negative durations;
- untraced runs attach no trace at all.
"""

from __future__ import annotations

import pytest

from repro.ebsp.loaders import MessageListLoader
from repro.ebsp.properties import JobProperties
from repro.ebsp.runner import run_job
from repro.kvstore.partitioned import PartitionedKVStore
from repro.obs.export import lane_tids, to_chrome_trace, validate_chrome_trace
from repro.obs.trace import RecordingTracer, TraceEvent

from tests.ebsp.jobs import TestJob

N_PARTITIONS = 4


@pytest.fixture(params=["threaded", "inline"])
def store(request):
    instance = PartitionedKVStore(n_partitions=N_PARTITIONS, runtime=request.param)
    yield instance
    instance.close()


def _ripple_job():
    """A few supersteps with messages crossing parts."""

    def fn(ctx):
        for value in ctx.input_messages():
            ctx.write_state(0, value)
            if value < 3:
                ctx.output_message((ctx.key + 1) % 16, value + 1)
        return False

    return TestJob(fn, loaders=[MessageListLoader([(i, 0) for i in range(16)])])


class TestTracedRun:
    def test_sync_trace_is_schema_valid(self, store):
        result = run_job(store, _ripple_job(), synchronize=True, trace=True)
        trace = result.trace
        assert trace is not None
        assert validate_chrome_trace(trace) == []

    def test_worker_lanes_match_runtime_workers(self, store):
        result = run_job(store, _ripple_job(), synchronize=True, trace=True)
        lanes = sorted(result.trace["otherData"]["lanes"].values())
        worker_lanes = [lane for lane in lanes if lane.startswith("worker-")]
        # every runtime worker ran part-steps for its parts: exactly one
        # lane per worker, numbered 0..n-1
        assert worker_lanes == [f"worker-{i}" for i in range(N_PARTITIONS)]
        assert "driver" in lanes

    def test_span_population(self, store):
        result = run_job(store, _ripple_job(), synchronize=True, trace=True)
        spans = [e for e in result.trace["traceEvents"] if e.get("ph") == "X"]
        names = {e["name"] for e in spans}
        # the instrumented layers all contributed
        assert {"job", "superstep", "barrier", "part-step", "commit"} <= names
        supersteps = [e for e in spans if e["name"] == "superstep"]
        assert len(supersteps) == result.steps
        assert all(e["dur"] >= 0 for e in spans)

    def test_async_trace_is_schema_valid(self, store):
        job = TestJob(
            lambda ctx: False,
            loaders=[MessageListLoader([(i, i) for i in range(8)])],
            properties=JobProperties(one_msg=True, no_continue=True, no_ss_order=True),
        )
        result = run_job(store, job, synchronize=False, trace=True)
        assert result.trace is not None
        assert validate_chrome_trace(result.trace) == []
        assert result.trace["otherData"]["engine"] == "async"

    def test_untraced_run_attaches_nothing(self, store):
        result = run_job(store, _ripple_job(), synchronize=True)
        assert result.trace is None
        # metrics flow regardless of tracing
        assert result.metrics["compute_invocations"]["value"] > 0

    def test_phase_split_accounts_time(self, store):
        result = run_job(store, _ripple_job(), synchronize=True, trace=True)
        phases = result.phase_seconds
        assert set(phases) == {"compute", "flush", "barrier_wait"}
        assert all(v >= 0.0 for v in phases.values())
        assert phases["compute"] > 0.0
        # the timeline carries the same split per step
        assert sum(m.compute_seconds for m in result.timeline) == pytest.approx(
            phases["compute"]
        )


class TestExporter:
    def test_lane_ordering(self):
        tids = lane_tids(["rpc-1", "worker-1", "driver", "worker-0", "qs-x-0"])
        ordered = sorted(tids, key=tids.get)
        assert ordered == ["driver", "worker-0", "worker-1", "rpc-1", "qs-x-0"]

    def test_roundtrip_valid(self):
        tracer = RecordingTracer()
        with tracer.span("outer", cat="t"):
            with tracer.span("inner", cat="t"):
                pass
        doc = to_chrome_trace(tracer.events())
        assert validate_chrome_trace(doc) == []

    def test_validator_flags_negative_duration(self):
        doc = to_chrome_trace([])
        doc["traceEvents"].append(
            {"name": "bad", "cat": "t", "ph": "X", "ts": 1.0, "dur": -5.0,
             "pid": 1, "tid": 0}
        )
        assert any("dur" in p for p in validate_chrome_trace(doc))

    def test_validator_flags_overlap(self):
        events = [
            TraceEvent("a", "t", "driver", start=0.0, duration=2.0),
            TraceEvent("b", "t", "driver", start=1.0, duration=2.0),
        ]
        doc = to_chrome_trace(events)
        assert any("without nesting" in p for p in validate_chrome_trace(doc))

    def test_validator_flags_unnamed_lane(self):
        doc = {
            "traceEvents": [
                {"name": "x", "cat": "t", "ph": "X", "ts": 0.0, "dur": 1.0,
                 "pid": 1, "tid": 9}
            ]
        }
        assert any("thread_name" in p for p in validate_chrome_trace(doc))
