"""Stable hashing and key→part assignment."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.util.hashing import part_for_key, stable_hash


class TestStableHash:
    def test_deterministic_for_strings(self):
        assert stable_hash("hello") == stable_hash("hello")

    def test_int_hash_is_value(self):
        # the Java-heritage fast path: Integer.hashCode() == the value
        assert stable_hash(7) == 7
        assert stable_hash(0) == 0

    def test_negative_int_masked(self):
        assert 0 <= stable_hash(-3) <= 0xFFFFFFFF

    def test_bool_not_int(self):
        assert stable_hash(True) != stable_hash(1)
        assert stable_hash(False) != stable_hash(0)

    def test_str_vs_bytes_distinct(self):
        assert stable_hash("ab") != stable_hash(b"ab")

    def test_tuple_order_matters(self):
        assert stable_hash((1, 2)) != stable_hash((2, 1))

    def test_frozenset_order_free(self):
        assert stable_hash(frozenset([1, 2, 3])) == stable_hash(frozenset([3, 2, 1]))

    def test_none_supported(self):
        assert isinstance(stable_hash(None), int)

    def test_nested_tuples(self):
        assert stable_hash((1, ("a", 2.5))) == stable_hash((1, ("a", 2.5)))

    def test_unsupported_type_raises(self):
        with pytest.raises(TypeError):
            stable_hash([1, 2])

    def test_custom_ripple_hash_overrides(self):
        class Pinned:
            def __init__(self, h):
                self._h = h

            def __ripple_hash__(self):
                return self._h

        assert stable_hash(Pinned(42)) == 42
        assert part_for_key(Pinned(42), 10) == 2

    @given(st.one_of(st.integers(), st.text(), st.binary(), st.floats(allow_nan=False)))
    def test_in_32bit_range(self, key):
        assert 0 <= stable_hash(key) <= 0xFFFFFFFF

    @given(st.text(), st.text())
    def test_equal_keys_equal_hashes(self, a, b):
        if a == b:
            assert stable_hash(a) == stable_hash(b)


class TestPartForKey:
    def test_in_range(self):
        for key in ["a", "b", 1, 2, (3, "x")]:
            assert 0 <= part_for_key(key, 7) < 7

    def test_single_part(self):
        assert part_for_key("anything", 1) == 0

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            part_for_key("k", 0)

    def test_int_keys_round_robin(self):
        # consequence of the Java-style int hash: contiguous keys spread evenly
        parts = [part_for_key(i, 4) for i in range(8)]
        assert parts == [0, 1, 2, 3, 0, 1, 2, 3]

    @given(st.integers(min_value=2, max_value=64), st.lists(st.text(), min_size=50, max_size=50, unique=True))
    def test_no_part_starves_badly(self, n_parts, keys):
        # a sanity property, not a balance guarantee: at least 2 parts used
        # for 50 distinct keys when there are few parts
        used = {part_for_key(k, n_parts) for k in keys}
        if n_parts <= 8:
            assert len(used) >= 2
