"""PlacementMap: routing, versioning, split/merge geometry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.elastic.placement import PlacementMap
from repro.util.hashing import stable_hash, sub_part_for_hash, sub_parts_for_hashes


class TestIdentity:
    def test_starts_identity(self):
        pm = PlacementMap(4, 4, max_fanout=4)
        assert pm.is_identity()
        assert pm.version == 0
        assert pm.n_physical == 16
        for key in range(100):
            h = stable_hash(key)
            assert pm.route(h, h % 4) == h % 4

    def test_active_parts_identity(self):
        pm = PlacementMap(3, 2, max_fanout=2)
        assert pm.active_physical_parts() == [0, 1, 2]

    def test_validation(self):
        with pytest.raises(ValueError):
            PlacementMap(0, 4)
        with pytest.raises(ValueError):
            PlacementMap(4, 0)
        with pytest.raises(ValueError):
            PlacementMap(4, 4, max_fanout=0)


class TestSplit:
    def test_split_routes_into_sub_parts(self):
        pm = PlacementMap(4, 4, max_fanout=4)
        physical = pm.split(0, 4)
        assert physical == [0, 4, 8, 12]
        assert pm.version == 1
        assert not pm.is_identity()
        hit = set()
        for key in range(0, 400, 4):  # keys of logical part 0
            h = stable_hash(key)
            dest = pm.route(h, 0)
            assert dest in {0, 4, 8, 12}
            assert pm.logical_of(dest) == 0
            hit.add(dest)
        # the hash mix must actually spread co-resident keys
        assert len(hit) == 4

    def test_unsplit_parts_unaffected(self):
        pm = PlacementMap(4, 4, max_fanout=4)
        pm.split(0, 4)
        for key in (1, 5, 2, 7, 11):
            h = stable_hash(key)
            assert pm.route(h, h % 4) == h % 4

    def test_scalar_and_vector_routes_agree(self):
        pm = PlacementMap(4, 4, max_fanout=4)
        pm.split(2, 3)
        keys = np.arange(1000)
        hashes = keys.astype(np.uint64) & np.uint64(0xFFFFFFFF)
        logicals = (hashes % np.uint64(4)).astype(np.int64)
        vector = pm.route_many(hashes.astype(np.int64), logicals)
        for key in range(1000):
            h = stable_hash(int(key))
            assert pm.route(h, h % 4) == vector[key]

    def test_fanout_bounds(self):
        pm = PlacementMap(4, 4, max_fanout=4)
        with pytest.raises(ValueError):
            pm.split(0, 1)
        with pytest.raises(ValueError):
            pm.split(0, 5)
        with pytest.raises(ValueError):
            pm.split(4, 2)

    def test_active_parts_after_split(self):
        pm = PlacementMap(4, 4, max_fanout=4)
        pm.split(1, 2)
        assert pm.active_physical_parts() == [0, 1, 2, 3, 5]


class TestMerge:
    def test_merge_restores_identity_routing(self):
        pm = PlacementMap(4, 4, max_fanout=4)
        pm.split(0, 4)
        version = pm.version
        pm.merge(0)
        assert pm.version == version + 1
        assert pm.is_identity()
        for key in range(0, 100, 4):
            h = stable_hash(key)
            assert pm.route(h, 0) == 0

    def test_merge_of_unsplit_part_is_noop(self):
        pm = PlacementMap(4, 4, max_fanout=4)
        pm.merge(3)
        assert pm.version == 0


class TestWorkerPins:
    def test_default_is_modulo(self):
        pm = PlacementMap(4, 3, max_fanout=2)
        assert pm.worker_of(5) == 2

    def test_assign_and_unassign(self):
        pm = PlacementMap(4, 3, max_fanout=2)
        version = pm.version
        pm.assign(5, 0)
        assert pm.worker_of(5) == 0
        assert pm.assignments() == {5: 0}
        # a pin changes where a part runs, not what routes to it
        assert pm.version == version
        pm.unassign(5)
        assert pm.worker_of(5) == 2

    def test_assign_validates_worker(self):
        pm = PlacementMap(4, 3, max_fanout=2)
        with pytest.raises(ValueError):
            pm.assign(0, 3)


class TestSubPartHash:
    def test_fanout_one_is_zero(self):
        assert sub_part_for_hash(12345, 1) == 0
        assert sub_part_for_hash(12345, 0) == 0

    def test_consecutive_co_resident_ints_spread(self):
        # ids ≡ 0 (mod 4) share logical part 0 under the int fast path;
        # the mixed sub-part hash must still spread them
        subs = {sub_part_for_hash(stable_hash(k), 4) for k in range(0, 64, 4)}
        assert len(subs) == 4

    def test_vectorized_matches_scalar(self):
        hashes = np.array([stable_hash(k) for k in range(256)], dtype=np.int64)
        fanouts = np.array([(k % 4) + 1 for k in range(256)], dtype=np.int64)
        vector = sub_parts_for_hashes(hashes, fanouts)
        for i in range(256):
            assert vector[i] == sub_part_for_hash(int(hashes[i]), int(fanouts[i]))
