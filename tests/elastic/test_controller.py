"""LoadMonitor folding and ElasticController policy, with a fake store.

The controller is driven here with hand-fed load observations, so every
decision (split, merge, migrate, cooldown) is asserted deterministically
— no timing involved.  Engine-level behaviour is covered by
``tests/ebsp/test_elastic.py``.
"""

from __future__ import annotations

from typing import Dict

import pytest

from repro.ebsp.results import Counters
from repro.elastic import ElasticConfig, ElasticController, LoadMonitor, PlacementMap


class FakeRuntime:
    def __init__(self, n_workers):
        self.n_workers = n_workers
        self.overrides: Dict[int, int] = {}

    def worker_of(self, lane):
        override = self.overrides.get(lane)
        if override is not None:
            return override
        return lane % self.n_workers


class FakeStore:
    """Records placement calls the way PartitionedKVStore would serve them."""

    def __init__(self, n_workers=4):
        self.runtime = FakeRuntime(n_workers)
        self.pins: Dict[int, int] = {}
        self.cleared: list = []
        self.migrations: list = []

    def set_placement_override(self, part, worker):
        self.pins[part] = worker
        self.runtime.overrides[part] = worker

    def clear_placement_override(self, part):
        self.cleared.append(part)
        self.runtime.overrides.pop(part, None)

    def migrate_part(self, part, target):
        self.migrations.append((part, target))
        source = self.runtime.worker_of(part)
        self.runtime.overrides[part] = target
        return {
            "part": part,
            "source": source,
            "target": target,
            "tables": 1,
            "entries": 10,
            "seconds": 0.25,
        }


def make_stack(n_logical=4, n_workers=4, **config_kwargs):
    placement = PlacementMap(
        n_logical, n_workers, max_fanout=config_kwargs.get("max_fanout", 4)
    )
    monitor = LoadMonitor(placement)
    config_kwargs.setdefault("min_part_seconds", 0.001)
    config_kwargs.setdefault("warmup_steps", 1)
    config_kwargs.setdefault("cooldown_steps", 0)
    config = ElasticConfig(**config_kwargs)
    store = FakeStore(n_workers)
    counters = Counters()
    controller = ElasticController(store, placement, monitor, config, counters)
    return placement, monitor, controller, store, counters


class TestMonitor:
    def test_folds_physical_into_logical(self):
        placement = PlacementMap(4, 4, max_fanout=4)
        monitor = LoadMonitor(placement)
        placement.split(0, 4)
        monitor.observe({0: 1.0, 4: 1.0, 8: 0.5, 12: 0.5, 1: 0.2})
        loads = monitor.load()
        assert loads[0] == pytest.approx(3.0)
        assert loads[1] == pytest.approx(0.2)
        assert loads[2] == 0.0

    def test_ewma_smooths(self):
        monitor = LoadMonitor(PlacementMap(2, 2), alpha=0.5)
        monitor.observe({0: 4.0})
        monitor.observe({0: 0.0})
        assert monitor.load()[0] == pytest.approx(2.0)
        assert monitor.steps_observed == 2

    def test_imbalance_and_hottest(self):
        monitor = LoadMonitor(PlacementMap(4, 4))
        monitor.observe({0: 3.0, 1: 0.5, 2: 0.25, 3: 0.25})
        assert monitor.hottest() == (0, 3.0)
        assert monitor.imbalance() == pytest.approx(3.0 / 1.0)

    def test_worker_stats_fold(self):
        placement = PlacementMap(4, 2)
        monitor = LoadMonitor(placement)
        monitor.observe(
            {0: 1.0, 1: 0.5},
            worker_stats={
                "workers": [
                    {"worker": 0, "busy_seconds": 2.0, "max_queue_depth": 7},
                    {"worker": 1, "busy_seconds": 0.5, "max_queue_depth": 1},
                ]
            },
        )
        assert monitor.worker_busy(0) == pytest.approx(2.0)
        assert monitor.worker_queue_depth(0) == 7
        estimated = monitor.estimated_worker_load()
        assert estimated[0] > estimated[1]

    def test_alpha_validated(self):
        with pytest.raises(ValueError):
            LoadMonitor(PlacementMap(2, 2), alpha=0.0)


class TestSplitPolicy:
    def test_hot_part_splits_and_pins_sub_parts(self):
        placement, monitor, controller, store, counters = make_stack(
            split_threshold=2.0
        )
        monitor.observe({0: 2.0, 1: 0.1, 2: 0.1, 3: 0.1})
        monitor.observe({0: 2.0, 1: 0.1, 2: 0.1, 3: 0.1})
        applied = controller.rebalance(step=1)
        assert applied == 1
        assert placement.fanout(0) == 4
        # sub-parts 4/8/12 pinned off part 0's home worker (worker 0)
        assert set(store.pins) == {4, 8, 12}
        assert all(worker != 0 for worker in store.pins.values())
        assert controller.sub_part_overrides == {4, 8, 12}
        assert counters.get("parts_split") == 1
        assert counters.get("load_imbalance") > 1000

    def test_warmup_defers_action(self):
        placement, monitor, controller, _, _ = make_stack()
        monitor.observe({0: 5.0, 1: 0.1, 2: 0.1, 3: 0.1})
        assert controller.rebalance(step=0) == 0
        assert placement.is_identity()

    def test_noise_floor(self):
        placement, monitor, controller, _, _ = make_stack(min_part_seconds=1.0)
        for _ in range(3):
            monitor.observe({0: 0.5, 1: 0.01, 2: 0.01, 3: 0.01})
        assert controller.rebalance(step=2) == 0
        assert placement.is_identity()

    def test_cooldown_rests_between_actions(self):
        placement, monitor, controller, _, _ = make_stack(
            cooldown_steps=2, max_actions_per_barrier=1
        )
        skewed = {0: 2.0, 1: 2.0, 2: 0.1, 3: 0.1}
        monitor.observe(skewed)
        monitor.observe(skewed)
        assert controller.rebalance(step=1) == 1
        monitor.observe(skewed)
        assert controller.rebalance(step=2) == 0  # cooling down
        monitor.observe(skewed)
        monitor.observe(skewed)
        assert controller.rebalance(step=4) == 1

    def test_split_disabled(self):
        placement, monitor, controller, _, _ = make_stack(
            enable_split=False, enable_migrate=False
        )
        monitor.observe({0: 5.0, 1: 0.1, 2: 0.1, 3: 0.1})
        monitor.observe({0: 5.0, 1: 0.1, 2: 0.1, 3: 0.1})
        assert controller.rebalance(step=1) == 0


class TestMergePolicy:
    def test_cold_split_part_merges(self):
        placement, monitor, controller, store, counters = make_stack()
        monitor.observe({0: 5.0, 1: 0.5, 2: 0.5, 3: 0.5})
        monitor.observe({0: 5.0, 1: 0.5, 2: 0.5, 3: 0.5})
        assert controller.rebalance(step=1) == 1
        # the part goes cold; EWMA pulls its load toward zero
        for _ in range(6):
            monitor.observe({0: 0.0, 1: 0.5, 2: 0.5, 3: 0.5})
        assert controller.rebalance(step=8) == 1
        assert placement.fanout(0) == 1
        assert counters.get("parts_merged") == 1
        # the sub-part pins survive the merge: in-flight spills drain
        # where they already landed
        assert controller.sub_part_overrides == {4, 8, 12}
        assert not store.cleared

    def test_release_clears_pins(self):
        placement, monitor, controller, store, _ = make_stack()
        monitor.observe({0: 5.0, 1: 0.1, 2: 0.1, 3: 0.1})
        monitor.observe({0: 5.0, 1: 0.1, 2: 0.1, 3: 0.1})
        controller.rebalance(step=1)
        controller.release_sub_part_overrides()
        assert sorted(store.cleared) == [4, 8, 12]
        assert controller.sub_part_overrides == set()
        assert placement.assignments() == {}


class TestMigratePolicy:
    def test_worker_skew_moves_a_part(self):
        # parts 0 and 2 share worker 0 in a 2-worker deployment; both
        # moderately loaded, so no single part crosses the split
        # threshold but worker 0 carries ~4x worker 1
        placement, monitor, controller, store, counters = make_stack(
            n_workers=2, split_threshold=10.0
        )
        load = {0: 1.0, 1: 0.25, 2: 1.0, 3: 0.25}
        monitor.observe(load)
        monitor.observe(load)
        applied = controller.rebalance(step=1)
        assert applied == 1
        assert store.migrations == [(0, 1)] or store.migrations == [(2, 1)]
        assert counters.get("parts_migrated") == 1
        assert counters.get("migration_seconds") == pytest.approx(0.25)

    def test_migrate_requires_store_support(self):
        placement, monitor, controller, store, _ = make_stack(
            n_workers=2, split_threshold=10.0
        )
        del FakeStore.migrate_part
        try:
            monitor.observe({0: 1.0, 2: 1.0})
            monitor.observe({0: 1.0, 2: 1.0})
            assert controller.rebalance(step=1) == 0
        finally:
            FakeStore.migrate_part = lambda self, part, target: None

    def test_balanced_workers_do_not_migrate(self):
        placement, monitor, controller, store, _ = make_stack(
            n_workers=2, split_threshold=10.0
        )
        monitor.observe({0: 1.0, 1: 1.0, 2: 1.0, 3: 1.0})
        monitor.observe({0: 1.0, 1: 1.0, 2: 1.0, 3: 1.0})
        assert controller.rebalance(step=1) == 0
        assert not store.migrations
